"""§3.3 — training cost: sampled vs exhaustive sweeps, scratch vs incremental.

Two cost stories share this bench.  The paper's own (§3.3): "for a given
micro-benchmark, it takes 20 minutes to test 40 frequency settings, 70
minutes to test all the 174 frequency settings" — regenerated from the
measurement-protocol cost model.  And the reproduction's: once a campaign
trace exists, *retraining* should not cost a full rebuild.  The streaming
trainer (``repro.core.incremental``) persists O(d²) normal-equation
accumulators keyed to a trace prefix, so when the trace merely grew the
retrain consumes only the appended records.  This bench measures that —
scratch-vs-incremental wall time on an append scenario at paper scale —
plus the accuracy cost of the streaming stack's random-Fourier energy
model against the exact-RBF dense path.

Quick mode (``REPRO_BENCH_QUICK=1`` or ``REPRO_QUICK=1``) shrinks the
trace so CI's smoke step stays fast; the ≥5× incremental bar is only
asserted at paper scale, where fixed solve costs no longer dominate (the
``assertions_active`` block in the JSON records which bars were enforced).
"""

import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from _common import write_artifact

from repro.core.config import exhaustive_settings, sample_training_settings
from repro.core.dataset import build_training_dataset, iter_kernel_measurements
from repro.core.incremental import train_streaming_from_trace
from repro.core.pipeline import train_models
from repro.gpusim.device import make_titan_x
from repro.gpusim.executor import GPUSimulator
from repro.harness.report import format_heading, format_table
from repro.measure import SimulatorBackend
from repro.measure.trace import TraceWriter
from repro.nvml.measurement import MeasurementCampaign
from repro.synthetic import generate_micro_benchmarks

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK") or os.environ.get("REPRO_QUICK"))
#: None = the full 106-code corpus (paper scale); quick keeps CI smoke fast.
N_KERNELS = 12 if QUICK else None
N_SETTINGS = 16 if QUICK else 40
#: Kernels appended after the base fit — the campaign's "trace grew" delta.
N_DELTA = 2 if QUICK else 4
BATCH_ROWS = 512 if QUICK else 4096
#: The acceptance bar: delta-fitting an append must beat a scratch rebuild
#: of the grown trace by this much.  Only meaningful at paper scale — at
#: quick sizes the fixed model-solve cost dominates both sides.
MIN_INCREMENTAL_SPEEDUP = 5.0
#: Random-Fourier energy model may cost at most this much training-set
#: MAPE over the exact-RBF dense path (absolute, e.g. 0.05 = 5 points).
MAX_RFF_MAPE_DELTA = 0.05


def regenerate_campaign_cost_table() -> tuple[str, dict]:
    """The paper's §3.3 numbers from the measurement-protocol cost model."""
    device = make_titan_x()
    campaign = MeasurementCampaign()
    sampled = sample_training_settings(device)
    exhaustive = exhaustive_settings(device)
    sampled_min = campaign.cost(len(sampled)).total_minutes
    exhaustive_min = campaign.cost(len(exhaustive)).total_minutes
    full_hours = campaign.cost(106 * len(sampled)).total_minutes / 60.0
    rows = [
        ("sampled (paper: 40 → ~20 min)", len(sampled), f"{sampled_min:.0f} min"),
        (
            "exhaustive (paper: 174 → ~70 min)",
            len(exhaustive),
            f"{exhaustive_min:.0f} min",
        ),
        (
            "full training campaign (106 codes x 40 settings)",
            106 * len(sampled),
            f"{full_hours:.0f} h",
        ),
    ]
    table = format_table(["campaign", "settings", "wall-clock"], rows)
    data = {
        "sampled_settings": len(sampled),
        "exhaustive_settings": len(exhaustive),
        "sampled_minutes": sampled_min,
        "exhaustive_minutes": exhaustive_min,
        "full_campaign_hours": full_hours,
    }
    return format_heading("§3.3 — measurement campaign cost") + "\n" + table, data


def _mape(pred: np.ndarray, actual: np.ndarray) -> float:
    return float(np.mean(np.abs((pred - actual) / actual)))


def _record(writer_path: Path, backend, specs, settings, append: bool) -> float:
    writer = TraceWriter(writer_path, device=backend.device.name, append=append)
    start = time.perf_counter()
    try:
        for _spec, _static, measurements in iter_kernel_measurements(
            backend, specs, settings
        ):
            writer.write_measurements(measurements)
    finally:
        writer.close(success=True)
    return time.perf_counter() - start


#: Wall-clock repeats for the timed fits (best-of, like the throughput
#: bench): the incremental fit is milliseconds, so a single sample would
#: be timer-noise-limited.
FIT_REPEATS = 1 if QUICK else 3


def _best_of(fn, repeats=FIT_REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


_CACHE: dict = {}


def measure_training_cost() -> dict:
    """One shared measurement pass for every test in this module.

    Scenario: record a base trace, scratch-fit it (streaming), append
    ``N_DELTA`` kernels, then retrain both ways — scratch over the grown
    trace vs delta-fit from the persisted accumulator state — and compare
    the streaming bundle's accuracy against the exact dense path.
    """
    if _CACHE:
        return _CACHE["result"]

    device = make_titan_x()
    backend = SimulatorBackend(device)
    specs = generate_micro_benchmarks()
    if N_KERNELS is not None:
        specs = specs[:N_KERNELS]
    settings = sample_training_settings(device, total=N_SETTINGS)
    base, delta = specs[:-N_DELTA], specs[-N_DELTA:]

    with tempfile.TemporaryDirectory(prefix="repro-bench-train-") as tmp:
        trace = Path(tmp) / "trace.jsonl"
        t_measure_base = _record(trace, backend, base, settings, append=False)

        t_scratch_base, scratch = _best_of(
            lambda: train_streaming_from_trace(
                trace, specs, settings, batch_rows=BATCH_ROWS
            )
        )

        t_measure_delta = _record(trace, backend, delta, settings, append=True)

        t_scratch_ext, scratch_ext = _best_of(
            lambda: train_streaming_from_trace(
                trace, specs, settings, batch_rows=BATCH_ROWS
            )
        )

        t_incremental, incremental = _best_of(
            lambda: train_streaming_from_trace(
                trace,
                specs,
                settings,
                batch_rows=BATCH_ROWS,
                prior_state=scratch.state,
            )
        )

    # The exact dense path over the same grown workload: in-memory design
    # matrix, batch scaler, exact-RBF energy model.
    dataset = build_training_dataset(backend, specs, settings)
    t_exact_fit, exact = _best_of(
        lambda: train_models(dataset, settings=settings), repeats=1
    )

    streaming_models = incremental.models
    errors = {
        "exact_energy_mape": _mape(exact.predict_energy(dataset.x), dataset.y_energy),
        "rff_energy_mape": _mape(
            streaming_models.predict_energy(dataset.x), dataset.y_energy
        ),
        "exact_speedup_mape": _mape(
            exact.predict_speedup(dataset.x), dataset.y_speedup
        ),
        "streaming_speedup_mape": _mape(
            streaming_models.predict_speedup(dataset.x), dataset.y_speedup
        ),
    }
    errors["rff_energy_mape_delta"] = (
        errors["rff_energy_mape"] - errors["exact_energy_mape"]
    )

    result = {
        "n_kernels": len(specs),
        "n_base_kernels": len(base),
        "n_delta_kernels": len(delta),
        "n_settings": len(settings),
        "rows_base": len(base) * len(settings),
        "rows_extended": len(specs) * len(settings),
        "batch_rows": BATCH_ROWS,
        "timings_s": {
            "measure_base": t_measure_base,
            "measure_delta": t_measure_delta,
            "scratch_fit_base": t_scratch_base,
            "scratch_fit_extended": t_scratch_ext,
            "incremental_fit_extended": t_incremental,
            "exact_dense_fit_extended": t_exact_fit,
        },
        "ratios": {
            "incremental_speedup": t_scratch_ext / t_incremental,
        },
        "model_error": errors,
        "incremental": {
            "mode": incremental.mode,
            "delta_records": incremental.delta_records,
            "scratch_mode": scratch.mode,
            "scratch_ext_mode": scratch_ext.mode,
        },
    }
    _CACHE["result"] = result
    return result


def regenerate_training_cost() -> tuple[str, dict]:
    cost_text, cost_data = regenerate_campaign_cost_table()
    m = measure_training_cost()
    t = m["timings_s"]
    speedup = m["ratios"]["incremental_speedup"]
    err = m["model_error"]
    rows = [
        (
            "streaming scratch (base trace)",
            f"{m['rows_base']}",
            f"{t['scratch_fit_base'] * 1e3:9.1f}",
            "-",
        ),
        (
            "streaming scratch (grown trace)",
            f"{m['rows_extended']}",
            f"{t['scratch_fit_extended'] * 1e3:9.1f}",
            "1.0x",
        ),
        (
            f"incremental delta-fit (+{m['n_delta_kernels']} kernels)",
            f"{m['rows_extended']}",
            f"{t['incremental_fit_extended'] * 1e3:9.1f}",
            f"{speedup:.1f}x",
        ),
        (
            "exact dense fit (grown trace)",
            f"{m['rows_extended']}",
            f"{t['exact_dense_fit_extended'] * 1e3:9.1f}",
            "-",
        ),
    ]
    retrain_table = format_table(["retrain path", "rows", "ms / fit", "speedup"], rows)
    text = (
        cost_text
        + "\n\n"
        + format_heading(
            f"retraining cost — {m['n_kernels']} codes x {m['n_settings']} "
            f"settings, append of {m['n_delta_kernels']} kernels"
        )
        + "\n"
        + retrain_table
        + f"\nincremental retrain consumed {m['incremental']['delta_records']} "
        + f"delta record(s) in mode {m['incremental']['mode']!r}"
        + f"\nenergy MAPE: exact RBF {err['exact_energy_mape'] * 100:.2f}% vs "
        + f"random-Fourier {err['rff_energy_mape'] * 100:.2f}% "
        + f"(delta {err['rff_energy_mape_delta'] * 100:+.2f} points)"
        + f"\nspeedup MAPE: exact {err['exact_speedup_mape'] * 100:.2f}% vs "
        + f"streaming {err['streaming_speedup_mape'] * 100:.2f}%"
    )
    data = {
        "quick": QUICK,
        "campaign_cost": cost_data,
        **m,
        "asserted": {
            "incremental_speedup_min": MIN_INCREMENTAL_SPEEDUP,
            "rff_energy_mape_delta_max": MAX_RFF_MAPE_DELTA,
        },
        "assertions_active": {
            # Quick traces are too small for the wall-clock bar: fixed
            # solve costs dominate, so the ratio is recorded but unasserted.
            "incremental_speedup": not QUICK,
            "rff_energy_mape_delta": True,
        },
    }
    return text, data


def test_training_cost():
    text, data = regenerate_training_cost()
    write_artifact("training_cost", text, data=data)
    assert "20 min" in text
    assert data["timings_s"]["incremental_fit_extended"] > 0.0
    assert data["model_error"]["rff_energy_mape"] > 0.0


def test_incremental_retrain_consumes_only_delta():
    m = measure_training_cost()
    assert m["incremental"]["mode"] == "incremental"
    assert m["incremental"]["delta_records"] == m["n_delta_kernels"]
    assert m["incremental"]["scratch_mode"] == "scratch"
    assert m["incremental"]["scratch_ext_mode"] == "scratch"


def test_rff_energy_model_close_to_exact():
    m = measure_training_cost()
    assert m["model_error"]["rff_energy_mape_delta"] <= MAX_RFF_MAPE_DELTA, (
        m["model_error"]
    )


@pytest.mark.skipif(
    QUICK, reason="quick traces are solve-dominated; the bar needs paper scale"
)
def test_incremental_at_least_5x_faster_than_scratch():
    m = measure_training_cost()
    assert m["ratios"]["incremental_speedup"] >= MIN_INCREMENTAL_SPEEDUP, (
        m["ratios"],
        m["timings_s"],
    )


def test_sampled_sweep_simulated(benchmark):
    """Benchmark the simulated 40-setting sweep of one micro-benchmark."""
    device = make_titan_x()
    sim = GPUSimulator(device)
    spec = generate_micro_benchmarks()[0]
    profile = spec.profile()
    settings = sample_training_settings(device)

    def sweep():
        return [sim.run_at(profile, c, m) for c, m in settings]

    records = benchmark(sweep)
    assert len(records) == 40


def test_exhaustive_sweep_simulated(benchmark):
    device = make_titan_x()
    sim = GPUSimulator(device)
    spec = generate_micro_benchmarks()[0]
    profile = spec.profile()
    settings = exhaustive_settings(device)

    def sweep():
        return [sim.run_at(profile, c, m) for c, m in settings]

    records = benchmark(sweep)
    assert len(records) == len(settings)


def test_exhaustive_costs_more_than_sampled():
    device = make_titan_x()
    campaign = MeasurementCampaign()
    sampled_cost = campaign.cost(len(sample_training_settings(device)))
    exhaustive_cost = campaign.cost(len(exhaustive_settings(device)))
    assert exhaustive_cost.total_minutes > 2.0 * sampled_cost.total_minutes
    assert sampled_cost.total_minutes == pytest.approx(20.0)
