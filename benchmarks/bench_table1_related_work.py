"""Table 1 — comparison against the state of the art.

A static capability matrix (the paper's Table 1): which related approaches
are static, Pareto-aware, frequency-scaling-aware and ML-based.  Included
for completeness of the per-table reproduction index; also doubles as a
check that our system actually exhibits all four capabilities.
"""

from _common import write_artifact

from repro.harness.report import format_heading, format_table

TABLE1 = [
    ("Grewe et al. [10]", True, False, False, True),
    ("Steen et al. [7]", False, True, False, False),
    ("Abe et al. [1]", False, False, True, False),
    ("Guerreiro et al. [11]", False, False, True, True),
    ("Wu et al. [29]", False, False, True, True),
    ("Our work", True, True, True, True),
]


def regenerate_table1() -> str:
    rows = [
        (name, *("Y" if v else "-" for v in caps))
        for name, *caps in TABLE1
    ]
    table = format_table(
        ["Paper", "Static", "Pareto-optimal", "Frequency Scaling", "Machine Learning"],
        rows,
    )
    return format_heading("Table 1 — comparison against the state-of-the-art") + "\n" + table


def test_table1(benchmark):
    text = benchmark(regenerate_table1)
    write_artifact("table1_related_work", text)
    assert "Our work" in text


def test_our_system_is_actually_static_pareto_dvfs_ml():
    """The four claimed capabilities are real properties of this repo."""
    from repro.core.predictor import ParetoPredictor
    from repro.features.extractor import FeatureExtractor
    from repro.harness.context import quick_context
    from repro.ml.svr import SVR

    ctx = quick_context()
    # Static: prediction consumes source text only — no execution involved.
    assert isinstance(ctx.predictor, ParetoPredictor)
    assert isinstance(FeatureExtractor().extract(
        "__kernel void f(__global float* x) { x[0] = 1.0f; }"
    ).values, tuple)
    # ML: the two models are SVR instances (paper §3.4).
    assert isinstance(ctx.models.speedup_model, SVR)
    assert isinstance(ctx.models.energy_model, SVR)
    # Frequency scaling + Pareto: the output is a Pareto set of clocks.
    result = ctx.predictor.predict_from_source(
        "__kernel void f(__global float* x) { x[0] = x[1] * 2.0f; }"
    )
    assert result.size >= 1
    assert all(p.mem_mhz > 0 and p.core_mhz > 0 for p in result.front)
