"""Fig. 1 — motivation: k-NN vs MT under frequency scaling.

Regenerates the six panels of the paper's Fig. 1: speedup vs core frequency
(a, d), normalized energy vs core frequency (b, e) and the bi-objective
scatter (c, f) for k-NN (compute-dominated) and MT (memory-dominated), one
series per memory domain.

Shape targets (paper §1.1):
* k-NN speedup rises strongly with the core clock; MT's is flat;
* normalized energy is parabolic in core frequency with an interior
  minimum (paper: within [885, 987] MHz for k-NN at high memory clocks);
* the default configuration is not always Pareto-optimal.
"""

from _common import series_table, write_artifact

from repro.harness.characterize import characterize_kernel
from repro.harness.context import paper_context
from repro.harness.report import ascii_scatter, format_heading
from repro.suite import FIG1_BENCHMARKS, get_benchmark


def regenerate_fig1() -> str:
    ctx = paper_context()
    sections: list[str] = []
    for name in FIG1_BENCHMARKS:
        ch = characterize_kernel(ctx.sim, get_benchmark(name), ctx.settings)
        sections.append(format_heading(f"Fig. 1 — {name} ({ch.classify()}-dominated)"))
        for label in ("H", "h", "l", "L"):
            series = ch.series[label]
            sections.append(f"\nmem-{label} ({series.mem_mhz:.0f} MHz)")
            sections.append(series_table(series.rows()))
            sections.append(
                f"energy minimum at core {series.energy_minimum_core_mhz:.0f} MHz"
            )
        scatter = {
            f"{label}": [(s, e) for _, s, e in ch.series[label].rows()]
            for label in ch.series
        }
        scatter["*default"] = [(1.0, 1.0)]
        sections.append("\nbi-objective view (speedup vs normalized energy):")
        sections.append(ascii_scatter(scatter, width=56, height=16))
    return "\n".join(sections)


def test_fig1_motivation(benchmark):
    text = benchmark.pedantic(regenerate_fig1, rounds=1, iterations=1)
    write_artifact("fig1_motivation", text)
    assert "k-NN" in text and "MT" in text


def test_fig1_shapes_hold():
    """The qualitative claims of §1.1 hold on the regenerated data."""
    ctx = paper_context()
    knn = characterize_kernel(ctx.sim, get_benchmark("k-NN"), ctx.settings)
    mt = characterize_kernel(ctx.sim, get_benchmark("MT"), ctx.settings)

    # k-NN: large speedup span at high memory clock.
    lo, hi = knn.series["H"].speedup_range
    assert hi - lo > 0.4
    # MT: flat in core, sensitive to memory.
    lo, hi = mt.series["H"].speedup_range
    assert hi - lo < 0.15
    assert mt.mem_sensitivity() > 0.5
    # Interior energy minimum for k-NN.
    series = knn.series["H"]
    assert min(series.core_mhz) < series.energy_minimum_core_mhz < max(series.core_mhz)
