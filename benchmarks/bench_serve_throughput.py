"""Serving throughput: cold vs warm feature cache, sequential vs batched.

The `repro.serve` subsystem exists so prediction can sit in an autotuner's
inner loop: features come from a content-hash cache instead of the clkernel
frontend, and a batch of kernels is predicted with one vectorized model
pass instead of a per-kernel Python loop.  This bench measures both claims
on a 50-kernel batch and records kernels/sec for the three serving regimes
(cold, warm-cache, batched).
"""

import time

from _common import latency_summary, write_artifact

from repro.core.predictor import ParetoPredictor
from repro.harness.context import quick_context
from repro.harness.report import format_heading, format_table
from repro.serve.cache import KernelFeatureCache
from repro.synthetic import generate_micro_benchmarks

N_KERNELS = 50
REPEATS = 3


def _specs():
    return generate_micro_benchmarks()[:N_KERNELS]


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_feature_cache() -> tuple[float, float]:
    """Seconds to extract features for all kernels: cold vs warm cache.

    "Cold" means no caching anywhere: the frontend's lowering memo
    (``repro.clkernel.lowering``) is cleared each round so the measurement
    reflects a fresh process parsing unseen sources.
    """
    from repro.clkernel.lowering import _lower_source_cached

    specs = _specs()

    def cold():
        _lower_source_cached.cache_clear()
        cache = KernelFeatureCache()
        return [cache.get(s.source, s.kernel_name) for s in specs]

    t_cold, _ = _best_of(cold)

    warm_cache = KernelFeatureCache()
    for s in specs:
        warm_cache.get(s.source, s.kernel_name)

    def warm():
        return [warm_cache.get(s.source, s.kernel_name) for s in specs]

    t_warm, _ = _best_of(warm)
    return t_cold, t_warm


def measure_inference() -> tuple[float, float]:
    """Seconds to predict all kernels: per-kernel loop vs batched pass.

    Uses the predictor's default candidate menu (every real configuration
    of the modeled memory domains) — the serving configuration.
    """
    ctx = quick_context()
    predictor = ParetoPredictor(ctx.models, ctx.device)
    statics = [s.static_features() for s in _specs()]

    predictor.predict_batch(statics)  # warm numpy/BLAS paths

    t_seq, _ = _best_of(
        lambda: [predictor.predict_from_features(s) for s in statics]
    )
    t_bat, _ = _best_of(lambda: predictor.predict_batch(statics))
    return t_seq, t_bat


def measure_latency_percentiles() -> dict:
    """Per-request p50/p99: the daemon bench's offline baseline.

    One timed pass per regime (warm everything first) — percentiles want
    the sample spread, not the best-of-three floor the totals report.
    """
    from repro.clkernel.lowering import _lower_source_cached

    specs = _specs()
    ctx = quick_context()
    predictor = ParetoPredictor(ctx.models, ctx.device)

    _lower_source_cached.cache_clear()
    cold_cache = KernelFeatureCache()
    extract_cold = []
    for s in specs:
        start = time.perf_counter()
        cold_cache.get(s.source, s.kernel_name)
        extract_cold.append(time.perf_counter() - start)

    extract_warm = []
    for s in specs:
        start = time.perf_counter()
        cold_cache.get(s.source, s.kernel_name)
        extract_warm.append(time.perf_counter() - start)

    statics = [s.static_features() for s in specs]
    predictor.predict_batch(statics)  # warm numpy/BLAS paths
    sequential = []
    for static in statics:
        start = time.perf_counter()
        predictor.predict_from_features(static)
        sequential.append(time.perf_counter() - start)

    return {
        "extract_cold": latency_summary(extract_cold),
        "extract_warm": latency_summary(extract_warm),
        "inference_sequential": latency_summary(sequential),
    }


def regenerate_throughput() -> tuple[str, dict]:
    t_cold, t_warm = measure_feature_cache()
    t_seq, t_bat = measure_inference()
    percentiles = measure_latency_percentiles()
    rows = [
        ("feature extraction, cold cache", f"{t_cold * 1e3:8.2f}",
         f"{N_KERNELS / t_cold:10.0f}", "1.0x"),
        ("feature extraction, warm cache", f"{t_warm * 1e3:8.2f}",
         f"{N_KERNELS / t_warm:10.0f}", f"{t_cold / t_warm:.1f}x"),
        ("inference, sequential per-kernel loop", f"{t_seq * 1e3:8.2f}",
         f"{N_KERNELS / t_seq:10.0f}", "1.0x"),
        ("inference, batched vectorized pass", f"{t_bat * 1e3:8.2f}",
         f"{N_KERNELS / t_bat:10.0f}", f"{t_seq / t_bat:.1f}x"),
    ]
    table = format_table(
        ["stage", "ms / 50 kernels", "kernels/sec", "speedup"], rows
    )
    data = {
        "n_kernels": N_KERNELS,
        "repeats": REPEATS,
        "timings_s": {
            "extract_cold": t_cold,
            "extract_warm": t_warm,
            "inference_sequential": t_seq,
            "inference_batched": t_bat,
        },
        "ratios": {
            "warm_cache_speedup": t_cold / t_warm,
            "batch_speedup": t_seq / t_bat,
        },
        "latency_s": percentiles,
        "asserted": {
            "warm_cache_speedup_min": 10.0,
            "batch_speedup_min": 5.0,
        },
    }
    return (
        format_heading("repro.serve — throughput on a 50-kernel batch")
        + "\n" + table
    ), data


def test_serve_throughput():
    text, data = regenerate_throughput()
    write_artifact("serve_throughput", text, data=data)
    assert "batched" in text


def test_warm_cache_at_least_10x_faster():
    t_cold, t_warm = measure_feature_cache()
    assert t_cold / t_warm >= 10.0, (t_cold, t_warm)


def test_batched_at_least_5x_faster():
    t_seq, t_bat = measure_inference()
    assert t_seq / t_bat >= 5.0, (t_seq, t_bat)
