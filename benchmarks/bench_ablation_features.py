"""Ablation — feature representation (paper §3.2, DESIGN.md §5).

Four feature-engineering decisions are swept:

1. **Combination columns** — our multiplicative reading of Fig. 3's
   "combined together" (``k·f_core``, ``k·f_mem``) vs the plain 12-column
   concatenation.  Without the products a linear model can express only
   one global frequency slope.
2. **Share normalization** (paper §3.2) vs raw weighted counts.
3. **Unknown-loop trip-count default** in the extractor (1 vs 16 vs 64).
4. **Named feature recipes** (``repro.analysis.recipes``) — every
   registered recipe is trained and evaluated on the held-out suite;
   per-recipe speedup/energy MAPE lands in ``BENCH_ablation_features.json``
   alongside an identity check that the ``paper10`` recipe reproduces the
   legacy extractor bit-for-bit.
"""

import json

import numpy as np
from _common import write_artifact

from repro.analysis.recipes import registered_recipes
from repro.core.pipeline import train_from_specs
from repro.features.extractor import ExtractorConfig, FeatureExtractor
from repro.features.vector import build_design_matrix
from repro.gpusim.executor import GPUSimulator
from repro.harness.context import paper_context
from repro.harness.report import format_heading, format_table
from repro.harness.runner import measure_configs
from repro.ml.metrics import mape
from repro.suite import test_benchmarks


def _test_speedup_rmse(sim, models, settings) -> float:
    total, n = 0.0, 0
    for spec in test_benchmarks():
        static = spec.static_features()
        measured = measure_configs(sim, spec, settings)
        x = build_design_matrix(static, settings, interactions=models.interactions)
        for config, pred in zip(settings, models.predict_speedup(x)):
            total += (pred - measured[config].speedup) ** 2
            n += 1
    return float(np.sqrt(total / n))


def _suite_mape(sim, models, settings, extractor_config) -> tuple[float, float]:
    """(speedup MAPE %, energy MAPE %) on the held-out suite.

    Static vectors are re-extracted with the recipe's own config so the
    design-matrix width matches what the models were trained on.
    """
    pred_s, pred_e, true_s, true_e = [], [], [], []
    for spec in test_benchmarks():
        static = spec.static_features(extractor_config)
        measured = measure_configs(sim, spec, settings)
        predicted = models.predict_objectives(static, settings)
        for config, (speedup, energy) in zip(settings, predicted):
            pred_s.append(speedup)
            pred_e.append(energy)
            true_s.append(measured[config].speedup)
            true_e.append(measured[config].norm_energy)
    return (
        mape(np.array(true_s), np.array(pred_s)),
        mape(np.array(true_e), np.array(pred_e)),
    )


def sweep_recipes() -> dict:
    """Train/evaluate every registered recipe; check paper10 identity.

    Returns the ``data`` payload recorded in ``BENCH_ablation_features.json``.
    """
    ctx = paper_context()
    micro = ctx.micro_benchmarks[::4]

    # Identity leg: the paper10 recipe must reproduce the legacy extractor
    # bit-for-bit — same static vectors, same serialized model state.
    legacy = FeatureExtractor()
    named = FeatureExtractor(ExtractorConfig(recipe="paper10"))
    vectors_identical = all(
        np.array_equal(
            legacy.extract(spec.source, spec.kernel_name).as_array(),
            named.extract(spec.source, spec.kernel_name).as_array(),
        )
        for spec in test_benchmarks()
    )
    sim = GPUSimulator(ctx.device)
    default_models, _ = train_from_specs(sim, micro, ctx.settings)
    explicit_models, _ = train_from_specs(
        GPUSimulator(ctx.device), micro, ctx.settings, feature_recipe="paper10"
    )
    state_identical = json.dumps(
        default_models.to_state(), sort_keys=True
    ) == json.dumps(explicit_models.to_state(), sort_keys=True)

    recipes: dict[str, dict] = {}
    for name in registered_recipes():
        sim = GPUSimulator(ctx.device)
        models, _ = train_from_specs(sim, micro, ctx.settings, feature_recipe=name)
        config = None if name == "paper10" else ExtractorConfig(recipe=name)
        speedup_mape, energy_mape = _suite_mape(sim, models, ctx.settings, config)
        recipes[name] = {
            "speedup_mape_pct": speedup_mape,
            "energy_mape_pct": energy_mape,
            "n_features": int(models.scaler.mean_.shape[0]),
        }

    return {
        "assertions_active": True,
        "recipes": recipes,
        "paper10_matches_legacy": {
            "static_vectors": vectors_identical,
            "model_state": state_identical,
        },
        "assertions": {
            "min_recipes_swept": 3,
            "paper10_matches_legacy": True,
            "per_recipe_mape_finite": True,
        },
    }


def _recipe_table(data: dict) -> str:
    rows = [
        (name, f"{d['n_features']}", f"{d['speedup_mape_pct']:.2f}", f"{d['energy_mape_pct']:.2f}")
        for name, d in sorted(data["recipes"].items())
    ]
    return format_table(
        ["feature recipe", "columns", "speedup MAPE %", "energy MAPE %"], rows
    )


def regenerate_feature_ablation() -> str:
    ctx = paper_context()
    micro = ctx.micro_benchmarks[::2]
    rows = []
    for label, interactions in (
        ("combined k*f columns (ours)", True),
        ("plain concatenation (k, f)", False),
    ):
        sim = GPUSimulator(ctx.device)
        models, _ = train_from_specs(sim, micro, ctx.settings, interactions=interactions)
        rmse = _test_speedup_rmse(sim, models, ctx.settings)
        rows.append((label, f"{rmse:.4f}"))
    table1 = format_table(["feature layout", "test speedup RMSE"], rows)

    # Trip-count default: how far do the static features move?
    shifts = []
    base = FeatureExtractor(ExtractorConfig(default_trip_count=16))
    for tc in (1, 64):
        other = FeatureExtractor(ExtractorConfig(default_trip_count=tc))
        deltas = []
        for spec in test_benchmarks():
            a = base.extract(spec.source, spec.kernel_name).as_array()
            b = other.extract(spec.source, spec.kernel_name).as_array()
            deltas.append(float(np.abs(a - b).max()))
        shifts.append((f"trip-count default {tc} (vs 16)", f"{max(deltas):.4f}"))
    table2 = format_table(["extractor config", "max feature shift"], shifts)

    data = sweep_recipes()
    table3 = _recipe_table(data)

    text = (
        format_heading("Ablation — feature representation (§3.2)")
        + "\n"
        + table1
        + "\n\n"
        + table2
        + "\nnote: suite kernels have mostly constant loop bounds, so the"
        + "\ntrip-count default moves features little; synthetic unbounded"
        + "\nloops are where the default matters."
        + "\n\n"
        + table3
        + "\nnote: paper10 is the paper's exact layout; +blocks append"
        + "\nanalysis-pass columns (repro.analysis.recipes)."
    )
    return text, data


def test_feature_ablation(benchmark):
    text, data = benchmark.pedantic(
        regenerate_feature_ablation, rounds=1, iterations=1
    )
    write_artifact("ablation_features", text, data)
    assert "combined" in text
    # The recipe sweep must cover at least three recipes, every MAPE must
    # be finite, and the paper10 recipe must reproduce the legacy
    # extractor exactly (the default artifact byte-identity guarantee).
    assert len(data["recipes"]) >= 3
    for entry in data["recipes"].values():
        assert np.isfinite(entry["speedup_mape_pct"])
        assert np.isfinite(entry["energy_mape_pct"])
    assert data["paper10_matches_legacy"]["static_vectors"] is True
    assert data["paper10_matches_legacy"]["model_state"] is True


def test_interactions_beat_concatenation():
    """The multiplicative combination must not be worse than the plain
    concatenation for the linear speedup model."""
    ctx = paper_context()
    micro = ctx.micro_benchmarks[::3]
    sim = GPUSimulator(ctx.device)
    with_int, _ = train_from_specs(sim, micro, ctx.settings, interactions=True)
    without, _ = train_from_specs(sim, micro, ctx.settings, interactions=False)
    rmse_with = _test_speedup_rmse(sim, with_int, ctx.settings)
    rmse_without = _test_speedup_rmse(sim, without, ctx.settings)
    assert rmse_with <= rmse_without * 1.05


def test_normalized_features_scale_invariant():
    """§3.2: 'codes with the same arithmetic intensity but different
    number of total instructions will have the same feature
    representation' — check on a doubled-body kernel."""
    single = """
    __kernel void f(__global float* x) {
        x[0] = x[1] * 2.0f + 1.0f;
    }
    """
    double = """
    __kernel void f(__global float* x) {
        x[0] = x[1] * 2.0f + 1.0f;
        x[2] = x[3] * 2.0f + 1.0f;
    }
    """
    fe = FeatureExtractor()
    a = fe.extract(single).as_array()
    b = fe.extract(double).as_array()
    assert np.allclose(a, b)
