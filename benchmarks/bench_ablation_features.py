"""Ablation — feature representation (paper §3.2, DESIGN.md §5).

Three feature-engineering decisions are swept:

1. **Combination columns** — our multiplicative reading of Fig. 3's
   "combined together" (``k·f_core``, ``k·f_mem``) vs the plain 12-column
   concatenation.  Without the products a linear model can express only
   one global frequency slope.
2. **Share normalization** (paper §3.2) vs raw weighted counts.
3. **Unknown-loop trip-count default** in the extractor (1 vs 16 vs 64).
"""

import numpy as np
from _common import write_artifact

from repro.core.pipeline import train_from_specs
from repro.features.extractor import ExtractorConfig, FeatureExtractor
from repro.features.vector import build_design_matrix
from repro.gpusim.executor import GPUSimulator
from repro.harness.context import paper_context
from repro.harness.report import format_heading, format_table
from repro.harness.runner import measure_configs
from repro.suite import test_benchmarks


def _test_speedup_rmse(sim, models, settings) -> float:
    total, n = 0.0, 0
    for spec in test_benchmarks():
        static = spec.static_features()
        measured = measure_configs(sim, spec, settings)
        x = build_design_matrix(static, settings, interactions=models.interactions)
        for config, pred in zip(settings, models.predict_speedup(x)):
            total += (pred - measured[config].speedup) ** 2
            n += 1
    return float(np.sqrt(total / n))


def regenerate_feature_ablation() -> str:
    ctx = paper_context()
    micro = ctx.micro_benchmarks[::2]
    rows = []
    for label, interactions in (
        ("combined k*f columns (ours)", True),
        ("plain concatenation (k, f)", False),
    ):
        sim = GPUSimulator(ctx.device)
        models, _ = train_from_specs(sim, micro, ctx.settings, interactions=interactions)
        rmse = _test_speedup_rmse(sim, models, ctx.settings)
        rows.append((label, f"{rmse:.4f}"))
    table1 = format_table(["feature layout", "test speedup RMSE"], rows)

    # Trip-count default: how far do the static features move?
    shifts = []
    base = FeatureExtractor(ExtractorConfig(default_trip_count=16))
    for tc in (1, 64):
        other = FeatureExtractor(ExtractorConfig(default_trip_count=tc))
        deltas = []
        for spec in test_benchmarks():
            a = base.extract(spec.source, spec.kernel_name).as_array()
            b = other.extract(spec.source, spec.kernel_name).as_array()
            deltas.append(float(np.abs(a - b).max()))
        shifts.append((f"trip-count default {tc} (vs 16)", f"{max(deltas):.4f}"))
    table2 = format_table(["extractor config", "max feature shift"], shifts)

    return (
        format_heading("Ablation — feature representation (§3.2)")
        + "\n"
        + table1
        + "\n\n"
        + table2
        + "\nnote: suite kernels have mostly constant loop bounds, so the"
        + "\ntrip-count default moves features little; synthetic unbounded"
        + "\nloops are where the default matters."
    )


def test_feature_ablation(benchmark):
    text = benchmark.pedantic(regenerate_feature_ablation, rounds=1, iterations=1)
    write_artifact("ablation_features", text)
    assert "combined" in text


def test_interactions_beat_concatenation():
    """The multiplicative combination must not be worse than the plain
    concatenation for the linear speedup model."""
    ctx = paper_context()
    micro = ctx.micro_benchmarks[::3]
    sim = GPUSimulator(ctx.device)
    with_int, _ = train_from_specs(sim, micro, ctx.settings, interactions=True)
    without, _ = train_from_specs(sim, micro, ctx.settings, interactions=False)
    rmse_with = _test_speedup_rmse(sim, with_int, ctx.settings)
    rmse_without = _test_speedup_rmse(sim, without, ctx.settings)
    assert rmse_with <= rmse_without * 1.05


def test_normalized_features_scale_invariant():
    """§3.2: 'codes with the same arithmetic intensity but different
    number of total instructions will have the same feature
    representation' — check on a doubled-body kernel."""
    single = """
    __kernel void f(__global float* x) {
        x[0] = x[1] * 2.0f + 1.0f;
    }
    """
    double = """
    __kernel void f(__global float* x) {
        x[0] = x[1] * 2.0f + 1.0f;
        x[2] = x[3] * 2.0f + 1.0f;
    }
    """
    fe = FeatureExtractor()
    a = fe.extract(single).as_array()
    b = fe.extract(double).as_array()
    assert np.allclose(a, b)
