"""Fig. 5 — speedup/energy characterization of eight benchmarks.

Regenerates the eight bi-objective panels of Fig. 5 (k-NN, AES,
Matrix-multiply, Convolution, Median Filter, Bit Compression, MT,
Blackscholes) over all sampled frequency configurations.

Shape targets (paper §4.2): two clear populations — memory- vs compute-
dominated; mem-H and mem-h nearly coincide; mem-l/L are erratic; most
Pareto-dominant points come from mem-h/H; the default configuration is
good but not always dominant.
"""

from _common import write_artifact

from repro.harness.characterize import characterize_kernel
from repro.harness.context import paper_context
from repro.harness.report import ascii_scatter, format_heading, format_table
from repro.pareto.algorithms import pareto_set_sort
from repro.suite import FIG5_BENCHMARKS, get_benchmark


def regenerate_fig5() -> str:
    ctx = paper_context()
    sections: list[str] = []
    summary_rows = []
    for name in FIG5_BENCHMARKS:
        ch = characterize_kernel(ctx.sim, get_benchmark(name), ctx.settings)
        sections.append(format_heading(f"Fig. 5 — {name}"))
        scatter = {
            label: [(s, e) for _, s, e in series.rows()]
            for label, series in ch.series.items()
        }
        scatter["*default"] = [(1.0, 1.0)]
        sections.append(ascii_scatter(scatter, width=56, height=14))

        # Which memory domains contribute Pareto points?
        points = ch.sweep.objective_points()
        front_idx = pareto_set_sort(points)
        front_domains = sorted(
            {ctx.device.domain(ch.sweep.points[i].mem_mhz).label for i in front_idx}
        )
        top = ch.series[max(ch.series, key=lambda l: ch.series[l].mem_mhz)]
        summary_rows.append(
            (
                name,
                ch.classify(),
                f"{top.speedup_range[0]:.2f}-{top.speedup_range[1]:.2f}",
                f"{top.energy_range[0]:.2f}-{top.energy_range[1]:.2f}",
                "/".join(front_domains),
            )
        )
    sections.append(format_heading("Fig. 5 summary"))
    sections.append(
        format_table(
            ["benchmark", "class", "speedup@mem-H", "energy@mem-H", "front domains"],
            summary_rows,
        )
    )
    return "\n".join(sections)


def test_fig5_characterization(benchmark):
    text = benchmark.pedantic(regenerate_fig5, rounds=1, iterations=1)
    write_artifact("fig5_characterization", text)
    assert "Blackscholes" in text


def test_fig5_two_populations():
    """§4.2: the suite splits into memory- and compute-dominated codes."""
    ctx = paper_context()
    classes = {
        name: characterize_kernel(ctx.sim, get_benchmark(name), ctx.settings).classify()
        for name in FIG5_BENCHMARKS
    }
    assert classes["MT"] == "memory"
    assert classes["Blackscholes"] == "memory"
    assert classes["k-NN"] == "compute"
    assert classes["MatrixMultiply"] == "compute"


def test_fig5_high_domains_dominate_front():
    """Most dominant points come from mem-h/H (paper §4.2)."""
    ctx = paper_context()
    high, total = 0, 0
    for name in FIG5_BENCHMARKS:
        ch = characterize_kernel(ctx.sim, get_benchmark(name), ctx.settings)
        front_idx = pareto_set_sort(ch.sweep.objective_points())
        for i in front_idx:
            total += 1
            if ch.sweep.points[i].mem_mhz >= 3304.0:
                high += 1
    assert high / total > 0.5
