"""Table 2 — evaluation of the predicted Pareto fronts.

Regenerates the paper's headline table: per benchmark, the binary-
hypervolume coverage difference D(P*, P'), the predicted and true front
cardinalities, and the extreme-point distances for max-speedup and
min-energy, sorted by coverage difference.

Shape targets (§4.5): D small for most benchmarks; the max-speedup extreme
predicted exactly in over half the suite (paper: 7/12); min-energy
extremes carry larger errors than max-speedup ones; k-NN among the worst.
"""

from _common import write_artifact

from repro.harness.context import paper_context
from repro.harness.evaluation import evaluate_suite
from repro.harness.report import format_heading, format_table
from repro.suite import test_benchmarks

#: Paper's Table 2 for side-by-side comparison in the artifact.
PAPER_TABLE2 = {
    "PerlinNoise": (0.0059, 12, 10),
    "MD": (0.0075, 9, 11),
    "K-means": (0.0155, 10, 12),
    "MedianFilter": (0.0162, 11, 6),
    "Convolution": (0.0197, 10, 14),
    "Blackscholes": (0.0208, 9, 7),
    "MT": (0.0272, 10, 6),
    "Flte": (0.0279, 9, 11),
    "MatrixMultiply": (0.0286, 9, 10),
    "BitCompression": (0.0316, 11, 6),
    "AES": (0.0362, 11, 14),
    "k-NN": (0.0660, 9, 8),
}


def regenerate_table2():
    ctx = paper_context()
    return evaluate_suite(ctx.sim, ctx.predictor, test_benchmarks(), ctx.settings)


def render(evaluations) -> str:
    rows = []
    for ev in evaluations:
        paper_d, paper_pred, paper_true = PAPER_TABLE2[ev.benchmark]
        rows.append(
            (
                ev.benchmark,
                f"{ev.coverage_diff:.4f}",
                ev.predicted_size,
                ev.true_size,
                ev.table_row()[4],
                ev.table_row()[5],
                f"{paper_d:.4f}",
                f"{paper_pred}/{paper_true}",
            )
        )
    table = format_table(
        [
            "Benchmark",
            "D(P*,P')",
            "|P'|",
            "|P*|",
            "max speedup Δ",
            "min energy Δ",
            "paper D",
            "paper |P'|/|P*|",
        ],
        rows,
    )
    return format_heading("Table 2 — evaluation of predicted Pareto fronts") + "\n" + table


def test_table2(benchmark):
    evaluations = benchmark.pedantic(regenerate_table2, rounds=1, iterations=1)
    write_artifact("table2_pareto_eval", render(evaluations))
    assert len(evaluations) == 12


def test_table2_sorted_by_coverage():
    evaluations = regenerate_table2()
    values = [ev.coverage_diff for ev in evaluations]
    assert values == sorted(values)


def test_table2_max_speedup_extremes_mostly_exact():
    """Paper: 'the point with maximum speedup is predicted exactly in 7
    out of 12 cases'."""
    evaluations = regenerate_table2()
    exact = sum(1 for ev in evaluations if ev.extrema.max_speedup_exact)
    assert exact >= 6


def test_table2_min_energy_harder_than_max_speedup():
    """Paper: 'In case of the point with minimum energy, we have larger
    mispredictions in general.'"""
    evaluations = regenerate_table2()
    speed_err = sum(sum(ev.extrema.max_speedup_delta) for ev in evaluations)
    energy_err = sum(sum(ev.extrema.min_energy_delta) for ev in evaluations)
    assert energy_err > speed_err


def test_table2_front_sizes_in_paper_range():
    """Predicted fronts must have paper-like cardinality (~9-13), not a
    collapsed pair or the whole candidate set."""
    evaluations = regenerate_table2()
    for ev in evaluations:
        assert 4 <= ev.predicted_size <= 20, ev.benchmark
