"""Fleet routing overhead: the multi-device front door vs direct services.

`repro.serve.fleet.FleetService` puts one routing layer (alias resolution
+ LRU bookkeeping) in front of per-device `PredictionService`s.  For that
to be a deployable default, warm-cache routed predictions must cost about
the same as calling the per-device service directly — and must return the
*identical* answer.  This bench interleaves requests across two devices
through both paths and records per-request latency; the byte-identity of
the fronts is asserted unconditionally, the overhead bound on every run.
"""

import os
import tempfile
import time

from _common import latency_summary, write_artifact

from repro.harness.context import quick_context
from repro.harness.report import format_heading, format_table
from repro.serve.fleet import FleetService
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.service import PredictionService
from repro.store.layout import MODELS_SUBDIR
from repro.synthetic import generate_micro_benchmarks

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
DEVICES = ("NVIDIA GTX Titan X", "NVIDIA Tesla P100")
ALIASES = ("titan-x", "p100")  # routed requests use aliases on purpose
N_KERNELS = 6 if QUICK else 20
ROUNDS = 3 if QUICK else 5

#: Warm-cache routing must stay within this factor of direct calls.  The
#: route is a dict lookup plus alias resolution against a model pass that
#: dominates the request, so the honest ratio is ~1.0x; 1.5x leaves room
#: for timer noise on loaded CI machines.
MAX_OVERHEAD = 1.5


def _build_store(root) -> FleetService:
    """A two-device campaign-store layout from cached quick contexts."""
    registry = ModelRegistry(root / MODELS_SUBDIR)
    for device in DEVICES:
        ctx = quick_context(device=device)
        registry.put(ModelKey(device=device, recipe="quick"), ctx.models)
    return FleetService.from_campaign_store(root)


def _requests():
    specs = generate_micro_benchmarks()[:N_KERNELS]
    return [(spec.source, spec.kernel_name) for spec in specs]


def measure_routing(root) -> tuple[float, float, int]:
    """Best-of-ROUNDS seconds for one interleaved cross-device sweep:
    direct per-device services vs fleet-routed, both fully warm."""
    fleet = _build_store(root)
    registry = fleet.registry
    direct = {
        alias: PredictionService(
            models=registry.get(ModelKey(device=device, recipe="quick")),
            device=fleet.service_for(alias).device,
            cache=fleet.feature_cache,
        )
        for alias, device in zip(ALIASES, DEVICES)
    }
    requests = _requests()

    # Warm everything: services loaded, shared feature cache populated,
    # numpy/BLAS paths exercised — and assert byte-identity while at it.
    for source, name in requests:
        for alias in ALIASES:
            routed = fleet.predict(source, kernel_name=name, device=alias)
            plain = direct[alias].predict(source, kernel_name=name)
            assert [(p.config, p.objectives) for p in routed.front] == [
                (p.config, p.objectives) for p in plain.front
            ], f"fleet routing changed the answer for {name} on {alias}"

    def sweep(predict, samples):
        start = time.perf_counter()
        for source, name in requests:
            for alias in ALIASES:
                t0 = time.perf_counter()
                predict(alias, source, name)
                samples.append(time.perf_counter() - t0)
        return time.perf_counter() - start

    direct_samples: list[float] = []
    fleet_samples: list[float] = []
    t_direct = min(
        sweep(lambda a, s, n: direct[a].predict(s, kernel_name=n), direct_samples)
        for _ in range(ROUNDS)
    )
    t_fleet = min(
        sweep(
            lambda a, s, n: fleet.predict(s, kernel_name=n, device=a),
            fleet_samples,
        )
        for _ in range(ROUNDS)
    )
    latencies = {
        "direct": latency_summary(direct_samples),
        "fleet_routed": latency_summary(fleet_samples),
    }
    return t_direct, t_fleet, len(requests) * len(ALIASES), latencies


def regenerate() -> tuple[str, float, float, dict]:
    with tempfile.TemporaryDirectory(prefix="fleet-bench-") as tmp:
        import pathlib

        t_direct, t_fleet, n, latencies = measure_routing(pathlib.Path(tmp))
    rows = [
        ("direct per-device PredictionService", f"{t_direct * 1e3:8.2f}",
         f"{t_direct / n * 1e6:9.1f}", "1.00x"),
        ("FleetService routed (alias keys)", f"{t_fleet * 1e3:8.2f}",
         f"{t_fleet / n * 1e6:9.1f}", f"{t_fleet / t_direct:.2f}x"),
    ]
    table = format_table(
        ["path", f"ms / {n} requests", "us/request", "vs direct"], rows
    )
    text = (
        format_heading(
            "repro.serve.fleet — warm cross-device routing overhead"
        )
        + "\n" + table
        + f"\n(2 devices interleaved, {n // 2} kernels, best of {ROUNDS})"
    )
    return text, t_direct, t_fleet, latencies


def test_fleet_routing_overhead_bounded():
    text, t_direct, t_fleet, latencies = regenerate()
    data = {
        "quick": QUICK,
        "n_kernels": N_KERNELS,
        "rounds": ROUNDS,
        "timings_s": {"direct": t_direct, "fleet_routed": t_fleet},
        "latency_s": latencies,
        "ratios": {"routing_overhead": t_fleet / t_direct},
        "asserted": {"routing_overhead_max": MAX_OVERHEAD},
    }
    write_artifact("fleet_routing", text, data=data)
    assert t_fleet <= t_direct * MAX_OVERHEAD, (t_direct, t_fleet)
