"""Fig. 8 — predicted vs real Pareto fronts for all twelve benchmarks.

Each panel shows the measured point cloud (gray in the paper), the mem-L
points (green), the real Pareto front (blue) and the predicted Pareto set
(red crosses).  Our ASCII panels use glyphs: '.' measured, 'L' mem-L,
'#' true front, 'P' predicted set, '*' the default config.

Shape targets (§4.5): good approximations on most benchmarks; the
predicted set tracks the real front's knee; mispredicted extremes appear
on the benchmarks with the worst single-objective accuracy.
"""

from _common import write_artifact

from repro.harness.context import paper_context
from repro.harness.evaluation import evaluate_suite
from repro.harness.report import ascii_scatter, format_heading
from repro.suite import test_benchmarks


def regenerate_fig8():
    ctx = paper_context()
    return evaluate_suite(ctx.sim, ctx.predictor, test_benchmarks(), ctx.settings)


def render(evaluations) -> str:
    ctx = paper_context()
    sections = [format_heading("Fig. 8 — predicted vs real Pareto fronts")]
    for ev in evaluations:
        sweep = ev.sweep
        mem_l_points = [
            p.objectives for p in sweep.points
            if ctx.device.domain(p.mem_mhz).label == "L"
        ]
        measured = [
            p.objectives for p in sweep.points
            if ctx.device.domain(p.mem_mhz).label != "L"
        ]
        series = {
            ".measured": measured,
            "L mem-L": mem_l_points,
            "# true front": [p.objectives for p in ev.true_front],
            "P predicted": [p.objectives for p in ev.predicted_measured],
            "*default": [(1.0, 1.0)],
        }
        sections.append(format_heading(f"{ev.benchmark}  (D = {ev.coverage_diff:.4f})", "-"))
        sections.append(ascii_scatter(series, width=60, height=16))
    return "\n".join(sections)


def test_fig8_pareto_fronts(benchmark):
    evaluations = benchmark.pedantic(regenerate_fig8, rounds=1, iterations=1)
    write_artifact("fig8_pareto_fronts", render(evaluations))
    assert len(evaluations) == 12


def test_fig8_predictions_track_fronts():
    """Ten of twelve benchmarks get a good approximation (paper's claim:
    'good approximations in ten out of twelve test benchmarks')."""
    evaluations = regenerate_fig8()
    good = sum(1 for ev in evaluations if ev.coverage_diff <= 0.10)
    assert good >= 10


def test_fig8_dominating_configs_exist():
    """§4.2's payoff: "there are other dominant solutions that cannot be
    selected by using the default configuration" — the predictor finds
    configurations strictly dominating the default for some benchmarks
    (notably the memory-bound ones, where core down-clocking is free)."""
    from repro.pareto.dominance import dominates

    evaluations = regenerate_fig8()
    found = {
        ev.benchmark
        for ev in evaluations
        if any(dominates(p.objectives, (1.0, 1.0)) for p in ev.predicted_measured)
    }
    assert len(found) >= 2
    assert found & {"MT", "Blackscholes"}


def test_fig8_efficiency_gains_available():
    """Every benchmark's predicted set contains a configuration with
    meaningfully lower measured energy than the default (>= 10% saving)."""
    evaluations = regenerate_fig8()
    for ev in evaluations:
        best_energy = min(p.norm_energy for p in ev.predicted_measured)
        assert best_energy <= 0.9, ev.benchmark
