"""Cross-device transfer error: the paper's portability claim (Fig. 4b).

The paper argues the approach "can be easily applied to different
GPU architectures" by training on one device and predicting on another
(§4.1, Fig. 4b: Titan X vs Tesla P100).  This bench quantifies that claim
under the simulator: train the two models on device A, predict the twelve
test benchmarks' (speedup, normalized energy) on device B's modeled
frequency settings, and compare against B's measured objectives — side by
side with the *native* model (trained on B itself).  The gap between
transfer and native error is the portability cost.

Quick mode (``REPRO_BENCH_QUICK=1`` or ``REPRO_QUICK=1``) uses the reduced
training contexts so CI's smoke step stays fast.
"""

import os

import numpy as np
from _common import write_artifact

from repro.core.config import modeled_subset
from repro.harness.context import paper_context
from repro.harness.report import format_heading, format_table
from repro.measure import SimulatorBackend
from repro.ml.metrics import mape
from repro.suite import test_benchmarks

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK") or os.environ.get("REPRO_QUICK"))

DEVICES = ("NVIDIA GTX Titan X", "NVIDIA Tesla P100")
SHORT = {"NVIDIA GTX Titan X": "titan-x", "NVIDIA Tesla P100": "tesla-p100"}


def _contexts():
    # paper_context honours REPRO_QUICK, so quick mode shrinks training.
    return {device: paper_context(device=device) for device in DEVICES}


def prediction_errors(models, eval_ctx) -> tuple[float, float]:
    """(speedup MAPE %, energy MAPE %) of ``models`` on ``eval_ctx``'s device.

    Evaluated over the twelve test benchmarks at the evaluation device's
    modeled frequency settings, against its measured objectives.
    """
    device = eval_ctx.device
    settings = modeled_subset(device, eval_ctx.settings) or eval_ctx.settings
    backend = SimulatorBackend(sim=eval_ctx.sim)
    true_speedup, true_energy = [], []
    pred_speedup, pred_energy = [], []
    for spec in test_benchmarks():
        measured = backend.measure(spec, settings)
        predicted = models.predict_objectives(spec.static_features(), settings)
        true_speedup.extend(measured.speedup.tolist())
        true_energy.extend(measured.norm_energy.tolist())
        pred_speedup.extend(p[0] for p in predicted)
        pred_energy.extend(p[1] for p in predicted)
    return (
        mape(np.asarray(true_speedup), np.asarray(pred_speedup)),
        mape(np.asarray(true_energy), np.asarray(pred_energy)),
    )


def transfer_matrix():
    """Rows of (train device, eval device, speedup MAPE, energy MAPE)."""
    contexts = _contexts()
    rows = []
    for train_device in DEVICES:
        for eval_device in DEVICES:
            err_s, err_e = prediction_errors(
                contexts[train_device].models, contexts[eval_device]
            )
            rows.append((train_device, eval_device, err_s, err_e))
    return rows


def regenerate_transfer_error() -> str:
    rows = transfer_matrix()
    native = {
        eval_device: (err_s, err_e)
        for train_device, eval_device, err_s, err_e in rows
        if train_device == eval_device
    }
    table_rows = []
    for train_device, eval_device, err_s, err_e in rows:
        kind = "native" if train_device == eval_device else "transfer"
        penalty_s = err_s - native[eval_device][0]
        penalty_e = err_e - native[eval_device][1]
        table_rows.append(
            (
                f"{SHORT[train_device]} -> {SHORT[eval_device]}",
                kind,
                f"{err_s:7.2f}",
                f"{err_e:7.2f}",
                "-" if kind == "native" else f"{penalty_s:+6.2f}",
                "-" if kind == "native" else f"{penalty_e:+6.2f}",
            )
        )
    table = format_table(
        [
            "train -> eval",
            "kind",
            "speedup MAPE %",
            "energy MAPE %",
            "Δ speedup pp",
            "Δ energy pp",
        ],
        table_rows,
    )
    return (
        format_heading(
            "cross-device transfer error — Fig. 4b portability "
            f"({'quick' if QUICK else 'paper'} contexts)"
        )
        + "\n"
        + table
        + "\n(Δ = transfer error minus the eval device's native-model error)"
    )


def test_transfer_error():
    text = regenerate_transfer_error()
    write_artifact("transfer_error", text)
    # Two devices → four (train, eval) pairs: two native, two transfer.
    lines = text.splitlines()
    assert sum(1 for line in lines if "| native " in line) == 2
    assert sum(1 for line in lines if "| transfer" in line) == 2


def test_errors_are_finite_and_bounded():
    rows = transfer_matrix()
    for _train, _eval, err_s, err_e in rows:
        assert np.isfinite(err_s) and np.isfinite(err_e)
        # Even cross-device, a trained model must beat noise wildly;
        # triple-digit MAPE would mean the transfer story is broken.
        assert err_s < 100.0 and err_e < 100.0, (err_s, err_e)


def test_native_training_is_competitive():
    """Native models should not be (much) worse than transferred ones."""
    rows = {(t, e): (s, en) for t, e, s, en in transfer_matrix()}
    for eval_device in DEVICES:
        native_s, _ = rows[(eval_device, eval_device)]
        for train_device in DEVICES:
            if train_device == eval_device:
                continue
            transfer_s, _ = rows[(train_device, eval_device)]
            assert native_s <= transfer_s + 5.0, (
                eval_device,
                native_s,
                transfer_s,
            )
