"""The measurement-backend protocol and its three implementations."""

import numpy as np
import pytest

from repro.core.dataset import build_training_dataset, measure_kernel
from repro.gpusim.device import make_tesla_p100, make_titan_x, resolve_device
from repro.gpusim.executor import GPUSimulator
from repro.measure import (
    MeasurementBackend,
    NvmlBackend,
    RecordingBackend,
    ReplayBackend,
    ReplayError,
    SimulatorBackend,
    as_backend,
    load_trace,
    save_trace,
)
from repro.core.config import sample_training_settings
from repro.suite import get_benchmark
from repro.synthetic.generator import generate_micro_benchmarks

#: A small sample spanning all four Titan X memory domains.
SETTINGS = sample_training_settings(make_titan_x(), total=10)


@pytest.fixture()
def spec():
    return get_benchmark("MT")


class TestProtocol:
    def test_all_backends_satisfy_protocol(self, tmp_path, spec):
        sim_b = SimulatorBackend()
        rec = RecordingBackend(sim_b)
        rec.measure(spec, SETTINGS)
        path = rec.save(tmp_path / "t.json")
        backends = [sim_b, NvmlBackend(), ReplayBackend(path), rec]
        for backend in backends:
            assert isinstance(backend, MeasurementBackend)
            caps = backend.capabilities
            assert caps.device == backend.device.name

    def test_capability_kinds(self, tmp_path, spec):
        sim_b = SimulatorBackend()
        assert sim_b.capabilities.kind == "simulator"
        assert sim_b.capabilities.vectorized
        assert NvmlBackend().capabilities.kind == "nvml"
        rec = RecordingBackend(sim_b)
        rec.measure(spec, SETTINGS)
        rep = ReplayBackend(rec.save(tmp_path / "t.json"))
        assert rep.capabilities.kind == "replay"
        assert not rep.capabilities.online

    def test_as_backend_wraps_simulator(self):
        sim = GPUSimulator()
        backend = as_backend(sim)
        assert isinstance(backend, SimulatorBackend)
        assert backend.sim is sim

    def test_as_backend_passes_backends_through(self):
        backend = SimulatorBackend()
        assert as_backend(backend) is backend

    def test_as_backend_rejects_junk(self):
        with pytest.raises(TypeError):
            as_backend(42)


class TestSimulatorBackend:
    def test_matches_measure_kernel_on_bare_simulator(self, spec):
        sim = GPUSimulator()
        via_backend = SimulatorBackend(sim=sim).measure(spec, SETTINGS)
        via_shim = measure_kernel(sim, spec, SETTINGS)
        assert np.array_equal(via_backend.speedup, via_shim.speedup)
        assert np.array_equal(via_backend.norm_energy, via_shim.norm_energy)
        assert via_backend.baseline == via_shim.baseline

    def test_device_parameterized(self, spec):
        p100 = SimulatorBackend(make_tesla_p100())
        m = p100.measure(spec, [(1328.0, 715.0), (544.0, 715.0)])
        assert m.baseline.config == (1328.0, 715.0)
        assert len(m) == 2

    def test_rejects_device_and_simulator(self):
        with pytest.raises(ValueError):
            SimulatorBackend(device=make_titan_x(), sim=GPUSimulator())

    def test_points_view_matches_columns(self, spec):
        m = SimulatorBackend().measure(spec, SETTINGS)
        assert [p.config for p in m.points] == SETTINGS
        assert [p.speedup for p in m.points] == m.speedup.tolist()


class TestNvmlBackend:
    def test_identical_to_simulator_backend(self, spec):
        """The real-hardware call pattern reproduces the vectorized sweep."""
        sim_m = SimulatorBackend().measure(spec, SETTINGS)
        nvml_m = NvmlBackend().measure(spec, SETTINGS)
        for field in ("time_ms", "power_w", "energy_j", "speedup", "norm_energy"):
            assert np.array_equal(getattr(sim_m, field), getattr(nvml_m, field)), field
        assert sim_m.baseline.time_ms == nvml_m.baseline.time_ms
        assert sim_m.baseline.energy_j == nvml_m.baseline.energy_j

    def test_resets_clocks_after_sweep(self, spec):
        backend = NvmlBackend()
        backend.measure(spec, SETTINGS)
        assert backend._handle.sim.clocks == backend.device.default_config

    def test_p100(self, spec):
        backend = NvmlBackend(make_tesla_p100())
        m = backend.measure(spec, [(544.0, 715.0)])
        assert len(m) == 1
        assert m.baseline.config == (1328.0, 715.0)


class TestReplay:
    def test_round_trip_training_dataset_exact(self, tmp_path):
        """Recorded → saved → replayed training matrices are exact."""
        specs = generate_micro_benchmarks()[::20]
        rec = RecordingBackend(SimulatorBackend())
        direct = build_training_dataset(rec, specs, SETTINGS)
        path = rec.save(tmp_path / "trace.json")

        replayed = build_training_dataset(ReplayBackend(path), specs, SETTINGS)
        assert np.array_equal(direct.x, replayed.x)
        assert np.array_equal(direct.y_speedup, replayed.y_speedup)
        assert np.array_equal(direct.y_energy, replayed.y_energy)
        assert direct.groups == replayed.groups

    def test_trace_json_round_trip(self, tmp_path, spec):
        rec = RecordingBackend(SimulatorBackend())
        rec.measure(spec, SETTINGS)
        path = save_trace(tmp_path / "t.json", rec.trace)
        loaded = load_trace(path)
        assert loaded.device == rec.trace.device
        kernel = loaded.kernels[spec.name]
        assert kernel.configs == SETTINGS
        assert kernel.time_ms == rec.trace.kernels[spec.name].time_ms

    def test_subset_and_reordered_replay(self, tmp_path, spec):
        rec = RecordingBackend(SimulatorBackend())
        rec.measure(spec, SETTINGS)
        rep = ReplayBackend(rec.save(tmp_path / "t.json"))
        subset = [SETTINGS[3], SETTINGS[0]]
        m = rep.measure(spec, subset)
        assert m.configs == subset
        full = rec.measure(spec, SETTINGS)
        assert m.time_ms[1] == full.time_ms[0]

    def test_unknown_kernel_rejected(self, tmp_path, spec):
        rec = RecordingBackend(SimulatorBackend())
        rec.measure(spec, SETTINGS)
        rep = ReplayBackend(rec.save(tmp_path / "t.json"))
        with pytest.raises(ReplayError):
            rep.measure(get_benchmark("k-NN"), SETTINGS)

    def test_unrecorded_config_rejected(self, tmp_path, spec):
        rec = RecordingBackend(SimulatorBackend())
        rec.measure(spec, SETTINGS[:2])
        rep = ReplayBackend(rec.save(tmp_path / "t.json"))
        with pytest.raises(ReplayError):
            rep.measure(spec, [SETTINGS[4]])

    def test_bad_version_rejected(self, tmp_path, spec):
        rec = RecordingBackend(SimulatorBackend())
        rec.measure(spec, SETTINGS[:1])
        state = rec.trace.to_state()
        state["version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(__import__("json").dumps(state))
        with pytest.raises(ReplayError):
            ReplayBackend(path)

    def test_device_mismatch_rejected(self, tmp_path, spec):
        rec = RecordingBackend(SimulatorBackend())
        rec.measure(spec, SETTINGS[:1])
        path = rec.save(tmp_path / "t.json")
        with pytest.raises(ReplayError, match="recorded on"):
            ReplayBackend(path, device=make_tesla_p100())

    def test_non_trace_json_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ReplayError):
            ReplayBackend(path)

    def test_replay_baseline_has_no_breakdowns(self, tmp_path, spec):
        rec = RecordingBackend(SimulatorBackend())
        rec.measure(spec, SETTINGS[:1])
        rep = ReplayBackend(rec.save(tmp_path / "t.json"))
        m = rep.measure(spec, SETTINGS[:1])
        assert m.baseline.phases is None
        assert m.baseline.power_parts is None


class TestDeviceAliases:
    def test_full_name_and_aliases_resolve(self):
        titan = resolve_device("NVIDIA GTX Titan X")
        assert resolve_device("titan-x") is titan
        assert resolve_device("Titan X") is titan
        assert resolve_device("tesla-p100").name == "NVIDIA Tesla P100"
        assert resolve_device("p100").name == "NVIDIA Tesla P100"
        assert resolve_device("nvidia-tesla-p100").name == "NVIDIA Tesla P100"

    def test_unknown_alias_raises_with_listing(self):
        with pytest.raises(KeyError, match="aliases"):
            resolve_device("gtx-9999")
