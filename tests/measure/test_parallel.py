"""ParallelBackend: process-parallel sweeps, bit-identical to serial."""

import numpy as np
import pytest

from repro.core.config import sample_training_settings
from repro.core.dataset import build_training_dataset
from repro.gpusim.device import make_tesla_p100, make_titan_x
from repro.measure import (
    MeasurementBackend,
    ParallelBackend,
    RecordingBackend,
    SimulatorBackend,
    as_backend,
    simulator_factory,
)
from repro.synthetic.generator import generate_micro_benchmarks

SETTINGS = sample_training_settings(make_titan_x(), total=8)
SPECS = generate_micro_benchmarks()[::30]  # 4 specs, fast


@pytest.fixture(params=[1, 2, 3], ids=lambda w: f"workers={w}")
def parallel(request):
    backend = ParallelBackend(simulator_factory(), workers=request.param)
    yield backend
    backend.close()


class TestProtocol:
    def test_satisfies_protocol(self, parallel):
        assert isinstance(parallel, MeasurementBackend)
        assert as_backend(parallel) is parallel

    def test_capabilities_wrap_inner(self, parallel):
        caps = parallel.capabilities
        assert caps.kind == "parallel+simulator"
        assert caps.device == parallel.device.name
        assert caps.deterministic

    def test_single_measure_matches_serial(self, parallel):
        serial = SimulatorBackend().measure(SPECS[0], SETTINGS)
        local = parallel.measure(SPECS[0], SETTINGS)
        assert np.array_equal(serial.time_ms, local.time_ms)

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelBackend(simulator_factory(), workers=0)

    def test_factory_accepts_alias(self):
        backend = ParallelBackend(simulator_factory("tesla-p100"), workers=1)
        assert backend.device.name == "NVIDIA Tesla P100"


class TestBitIdentity:
    def test_dataset_identical_across_worker_counts(self, parallel):
        """The acceptance bar: parallel assembly == serial, bit for bit."""
        serial = build_training_dataset(SimulatorBackend(), SPECS, SETTINGS)
        fanned = build_training_dataset(parallel, SPECS, SETTINGS)
        assert np.array_equal(serial.x, fanned.x)
        assert np.array_equal(serial.y_speedup, fanned.y_speedup)
        assert np.array_equal(serial.y_energy, fanned.y_energy)
        assert serial.groups == fanned.groups
        assert set(serial.static_features) == set(fanned.static_features)

    def test_imap_preserves_spec_order(self, parallel):
        results = list(parallel.imap_measure(SPECS, SETTINGS))
        assert [m.spec.name for m, _ in results] == [s.name for s in SPECS]

    def test_imap_with_features_matches_parent_extraction(self, parallel):
        for spec, (_, static) in zip(
            SPECS, parallel.imap_measure(SPECS, SETTINGS, with_features=True)
        ):
            assert static is not None
            assert static.values == spec.static_features().values
            assert static.kernel_name == spec.name

    def test_measure_many_matches_serial(self):
        with ParallelBackend(simulator_factory(make_tesla_p100()), workers=2) as pb:
            configs = [(1328.0, 715.0), (544.0, 715.0)]
            many = pb.measure_many(SPECS[:2], configs)
            for spec, m in zip(SPECS[:2], many):
                serial = SimulatorBackend(make_tesla_p100()).measure(spec, configs)
                assert np.array_equal(m.energy_j, serial.energy_j)


class TestRecordingOverParallel:
    def test_recording_captures_parallel_sweeps(self, tmp_path):
        with ParallelBackend(simulator_factory(), workers=2) as pb:
            rec = RecordingBackend(pb, stream=tmp_path / "t.jsonl")
            fanned = build_training_dataset(rec, SPECS, SETTINGS)
            rec.close()
        from repro.measure import ReplayBackend

        replayed = build_training_dataset(
            ReplayBackend(tmp_path / "t.jsonl"), SPECS, SETTINGS
        )
        assert np.array_equal(fanned.x, replayed.x)
        assert np.array_equal(fanned.y_speedup, replayed.y_speedup)
        assert np.array_equal(fanned.y_energy, replayed.y_energy)

    def test_pool_is_lazy_and_closeable(self):
        backend = ParallelBackend(simulator_factory(), workers=2)
        assert backend._pool is None
        list(backend.imap_measure(SPECS[:2], SETTINGS[:2]))
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None
