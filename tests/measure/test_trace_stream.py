"""JSONL trace streams: v2 writer/reader, v1 compatibility, out-of-core replay."""

import json

import numpy as np
import pytest

from repro.core.config import sample_training_settings
from repro.core.dataset import build_training_dataset
from repro.gpusim.device import make_titan_x
from repro.measure import (
    TRACE_VERSION,
    TRACE_VERSION_V1,
    RecordingBackend,
    ReplayBackend,
    ReplayError,
    SimulatorBackend,
    TraceWriter,
    iter_trace,
    load_trace,
    read_trace_header,
    save_trace,
)
from repro.suite import get_benchmark
from repro.synthetic.generator import generate_micro_benchmarks

SETTINGS = sample_training_settings(make_titan_x(), total=10)


@pytest.fixture()
def recorded():
    rec = RecordingBackend(SimulatorBackend())
    for spec in generate_micro_benchmarks()[::40]:
        rec.measure(spec, SETTINGS)
    return rec.trace


class TestFormatRoundTrip:
    def test_jsonl_and_v1_round_trip_equal(self, tmp_path, recorded):
        """The satellite bar: JSONL ↔ v1-JSON traces are interchangeable."""
        p2 = save_trace(tmp_path / "t.jsonl", recorded)
        p1 = save_trace(tmp_path / "t.json", recorded, version=TRACE_VERSION_V1)
        t2, t1 = load_trace(p2), load_trace(p1)
        assert t2.device == t1.device == recorded.device
        assert set(t2.kernels) == set(t1.kernels)
        for name in t2.kernels:
            assert t2.kernels[name].configs == t1.kernels[name].configs
            assert t2.kernels[name].time_ms == t1.kernels[name].time_ms
            assert t2.kernels[name].power_w == t1.kernels[name].power_w
            assert t2.kernels[name].energy_j == t1.kernels[name].energy_j

    def test_jsonl_layout_is_one_record_per_line(self, tmp_path, recorded):
        path = save_trace(tmp_path / "t.jsonl", recorded)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["version"] == TRACE_VERSION
        assert header["device"] == recorded.device
        assert len(lines) == 1 + len(recorded.kernels)
        assert all("kernel" in json.loads(line) for line in lines[1:])

    def test_replay_identical_from_both_formats(self, tmp_path, recorded):
        specs = generate_micro_benchmarks()[::40]
        p2 = save_trace(tmp_path / "t.jsonl", recorded)
        p1 = save_trace(tmp_path / "t.json", recorded, version=TRACE_VERSION_V1)
        d2 = build_training_dataset(ReplayBackend(p2), specs, SETTINGS)
        d1 = build_training_dataset(ReplayBackend(p1), specs, SETTINGS)
        assert np.array_equal(d1.x, d2.x)
        assert np.array_equal(d1.y_speedup, d2.y_speedup)
        assert np.array_equal(d1.y_energy, d2.y_energy)

    def test_header_readable_for_both(self, tmp_path, recorded):
        p2 = save_trace(tmp_path / "t.jsonl", recorded)
        p1 = save_trace(tmp_path / "t.json", recorded, version=TRACE_VERSION_V1)
        assert read_trace_header(p2)["device"] == recorded.device
        assert read_trace_header(p1)["version"] == TRACE_VERSION_V1

    def test_unknown_write_version_rejected(self, tmp_path, recorded):
        with pytest.raises(ReplayError):
            save_trace(tmp_path / "t", recorded, version=7)

    def test_future_stream_version_reported_as_such(self, tmp_path, recorded):
        """A v3 stream must say 'unsupported version', not 'not valid JSON'."""
        path = save_trace(tmp_path / "t.jsonl", recorded)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 3
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ReplayError, match="unsupported trace stream version 3"):
            ReplayBackend(path)
        with pytest.raises(ReplayError, match="unsupported trace stream version 3"):
            load_trace(path)


class TestStreamingWriter:
    def test_records_are_durable_before_close(self, tmp_path):
        spec = get_benchmark("MT")
        backend = SimulatorBackend()
        writer = TraceWriter(tmp_path / "t.jsonl", device=backend.device.name)
        writer.write_measurements(backend.measure(spec, SETTINGS))
        # Readable mid-stream: the writer flushed the record already.
        names = [name for name, _ in iter_trace(tmp_path / "t.jsonl")]
        assert names == [spec.name]
        writer.close()
        with pytest.raises(ReplayError):
            writer.write_measurements(backend.measure(spec, SETTINGS))

    def test_append_extends_existing_stream(self, tmp_path):
        backend = SimulatorBackend()
        with TraceWriter(tmp_path / "t.jsonl", device=backend.device.name) as w:
            w.write_measurements(backend.measure(get_benchmark("MT"), SETTINGS))
        with TraceWriter(
            tmp_path / "t.jsonl", device=backend.device.name, append=True
        ) as w:
            w.write_measurements(backend.measure(get_benchmark("k-NN"), SETTINGS))
        assert sorted(load_trace(tmp_path / "t.jsonl").kernels) == ["MT", "k-NN"]

    def test_append_rejects_other_device(self, tmp_path):
        with TraceWriter(tmp_path / "t.jsonl", device="NVIDIA GTX Titan X"):
            pass
        with pytest.raises(ReplayError, match="append"):
            TraceWriter(tmp_path / "t.jsonl", device="NVIDIA Tesla P100", append=True)

    def test_repeated_kernel_records_merge_on_read(self, tmp_path):
        spec = get_benchmark("MT")
        backend = SimulatorBackend()
        with TraceWriter(tmp_path / "t.jsonl", device=backend.device.name) as w:
            w.write_measurements(backend.measure(spec, SETTINGS[:4]))
            w.write_measurements(backend.measure(spec, SETTINGS[4:]))
        merged = load_trace(tmp_path / "t.jsonl").kernels[spec.name]
        assert merged.configs == SETTINGS
        # And the streaming view yields the two raw records.
        assert sum(1 for _ in iter_trace(tmp_path / "t.jsonl")) == 2

    def test_incremental_recording_backend(self, tmp_path):
        spec = get_benchmark("MT")
        with RecordingBackend(
            SimulatorBackend(), stream=tmp_path / "t.jsonl"
        ) as rec:
            rec.measure(spec, SETTINGS)
            # Already on disk, before close/save.
            assert (tmp_path / "t.jsonl").stat().st_size > 0
            assert ReplayBackend(tmp_path / "t.jsonl").kernels() == [spec.name]
            # Streaming mode keeps no in-memory trace (O(1) for campaigns)…
            assert rec.trace.kernels == {}
            with pytest.raises(ReplayError, match="nothing to save"):
                rec.save(tmp_path / "copy.jsonl")

    def test_stream_with_keep_in_memory_allows_save(self, tmp_path):
        spec = get_benchmark("MT")
        with RecordingBackend(
            SimulatorBackend(), stream=tmp_path / "t.jsonl", keep_in_memory=True
        ) as rec:
            rec.measure(spec, SETTINGS)
        saved = rec.save(tmp_path / "copy.jsonl")
        assert load_trace(saved).kernels.keys() == {spec.name}

    def test_corrupt_record_reported_with_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path, device="NVIDIA GTX Titan X"):
            pass
        with path.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ReplayError, match="line 2"):
            list(iter_trace(path))


class TestOutOfCoreReplay:
    def test_lazy_kernel_loading(self, tmp_path, recorded):
        path = save_trace(tmp_path / "t.jsonl", recorded)
        replay = ReplayBackend(path, cache_kernels=1)
        stream = replay._stream
        assert stream is not None
        assert len(stream._cache) == 0  # nothing materialized yet
        specs = generate_micro_benchmarks()[::40]
        replay.measure(specs[0], SETTINGS)
        replay.measure(specs[1], SETTINGS)
        assert len(stream._cache) == 1  # bounded: older kernel was dropped

    def test_out_of_core_matches_materialized(self, tmp_path, recorded):
        path = save_trace(tmp_path / "t.jsonl", recorded)
        specs = generate_micro_benchmarks()[::40]
        lazy = build_training_dataset(
            ReplayBackend(path, cache_kernels=1), specs, SETTINGS
        )
        eager = build_training_dataset(
            ReplayBackend(load_trace(path)), specs, SETTINGS
        )
        assert np.array_equal(lazy.x, eager.x)
        assert np.array_equal(lazy.y_speedup, eager.y_speedup)
        assert np.array_equal(lazy.y_energy, eager.y_energy)
