"""v3 columnar sidecars: compaction, mmap replay, fallback, determinism."""

import shutil

import numpy as np
import pytest

from repro.core.config import sample_training_settings
from repro.core.dataset import build_training_dataset
from repro.gpusim.device import make_titan_x
from repro.measure import (
    ColumnarTrace,
    RecordingBackend,
    ReplayBackend,
    SimulatorBackend,
    TraceWriter,
    compact_trace,
    sidecar_path,
)
from repro.measure.columnar import sidecar_partial_path
from repro.synthetic.generator import generate_micro_benchmarks

SETTINGS = sample_training_settings(make_titan_x(), total=10)
SPECS = generate_micro_benchmarks()[::40]


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "t.jsonl"
    with RecordingBackend(SimulatorBackend(), stream=path) as rec:
        for spec in SPECS:
            rec.measure(spec, SETTINGS)
    return path


def dataset(path, prefer_columnar):
    backend = ReplayBackend(path, prefer_columnar=prefer_columnar)
    return build_training_dataset(backend, SPECS, SETTINGS)


def assert_datasets_identical(a, b):
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.y_speedup, b.y_speedup)
    assert np.array_equal(a.y_energy, b.y_energy)
    assert a.groups == b.groups


class TestCompaction:
    def test_compact_writes_sidecar_covering_whole_file(self, trace_path):
        result = compact_trace(trace_path)
        assert result.action == "written"
        assert result.sidecar == sidecar_path(trace_path)
        assert result.sidecar.exists()
        assert result.prefix_bytes == trace_path.stat().st_size

        columnar = ColumnarTrace.open(trace_path)
        assert columnar is not None
        assert sorted(columnar.kernels) == sorted(s.name for s in SPECS)
        assert columnar.n_rows == len(SPECS) * len(SETTINGS)
        assert len(columnar.records) == len(SPECS)

    def test_fresh_sidecar_is_skipped_and_force_rewrites(self, trace_path):
        compact_trace(trace_path)
        before = sidecar_path(trace_path).read_bytes()
        assert compact_trace(trace_path).action == "fresh"
        assert compact_trace(trace_path, force=True).action == "written"
        # Deterministic bytes: recompacting the same JSONL is a no-op.
        assert sidecar_path(trace_path).read_bytes() == before

    def test_resumed_compaction_equals_one_shot(self, trace_path, tmp_path):
        """Compact, append, recompact == compacting the final bytes once."""
        compact_trace(trace_path)
        backend = SimulatorBackend()
        with TraceWriter(trace_path, device=backend.device.name, append=True) as w:
            for spec in SPECS[:2]:
                w.write_measurements(backend.measure(spec, SETTINGS[::-1]))
        resumed = compact_trace(trace_path)
        assert resumed.action == "written"

        one_shot = tmp_path / "copy.jsonl"
        shutil.copyfile(trace_path, one_shot)
        compact_trace(one_shot)
        assert (
            sidecar_path(trace_path).read_bytes()
            == sidecar_path(one_shot).read_bytes()
        )

    def test_empty_stream_compacts_to_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with TraceWriter(path, device="NVIDIA GTX Titan X"):
            pass
        assert compact_trace(path).action == "empty"
        assert not sidecar_path(path).exists()

    def test_partial_debris_is_replaced_not_read(self, trace_path):
        partial = sidecar_partial_path(trace_path)
        partial.write_bytes(b"crashed mid-compaction")
        result = compact_trace(trace_path)
        assert result.action == "written"
        assert not partial.exists()
        assert ColumnarTrace.open(trace_path) is not None
        # Fresh re-run also sweeps new debris away.
        partial.write_bytes(b"crashed again")
        assert compact_trace(trace_path).action == "fresh"
        assert not partial.exists()


class TestMmapReplay:
    def test_datasets_bit_identical_jsonl_vs_columnar(self, trace_path):
        compact_trace(trace_path)
        assert_datasets_identical(
            dataset(trace_path, prefer_columnar=False),
            dataset(trace_path, prefer_columnar=True),
        )

    def test_fast_path_serves_without_materializing(self, trace_path):
        compact_trace(trace_path)
        backend = ReplayBackend(trace_path)
        backend.measure(SPECS[0], SETTINGS)
        assert SPECS[0].name in backend._mmap_prepared
        assert len(backend._stream._cache) == 0  # no KernelTrace built

    def test_reordered_and_subset_requests_fall_back_identically(
        self, trace_path
    ):
        compact_trace(trace_path)
        jsonl = ReplayBackend(trace_path, prefer_columnar=False)
        columnar = ReplayBackend(trace_path, prefer_columnar=True)
        for request in (SETTINGS[::-1], SETTINGS[:3], SETTINGS):
            a = jsonl.measure(SPECS[0], request)
            b = columnar.measure(SPECS[0], request)
            assert np.array_equal(a.time_ms, b.time_ms)
            assert np.array_equal(a.power_w, b.power_w)
            assert np.array_equal(a.energy_j, b.energy_j)

    def test_appended_delta_tail_served_with_prefix(self, trace_path):
        compact_trace(trace_path)
        backend = SimulatorBackend()
        extra = generate_micro_benchmarks()[1]
        assert extra.name not in {s.name for s in SPECS}
        with TraceWriter(trace_path, device=backend.device.name, append=True) as w:
            w.write_measurements(backend.measure(extra, SETTINGS))
        # Sidecar still fresh for its prefix; the new kernel comes off the
        # JSONL tail, and both paths agree bit for bit.
        assert ColumnarTrace.open(trace_path) is not None
        specs = [*SPECS, extra]
        a = build_training_dataset(
            ReplayBackend(trace_path, prefer_columnar=False), specs, SETTINGS
        )
        b = build_training_dataset(
            ReplayBackend(trace_path, prefer_columnar=True), specs, SETTINGS
        )
        assert_datasets_identical(a, b)


class TestFallback:
    def test_missing_sidecar_opens_as_none(self, trace_path):
        assert ColumnarTrace.open(trace_path) is None

    def test_torn_sidecar_falls_back_byte_identically(self, trace_path):
        baseline = dataset(trace_path, prefer_columnar=False)
        compact_trace(trace_path)
        side = sidecar_path(trace_path)
        side.write_bytes(side.read_bytes()[: side.stat().st_size // 2])
        assert ColumnarTrace.open(trace_path) is None
        assert_datasets_identical(
            baseline, dataset(trace_path, prefer_columnar=True)
        )

    def test_garbage_sidecar_falls_back_byte_identically(self, trace_path):
        baseline = dataset(trace_path, prefer_columnar=False)
        compact_trace(trace_path)
        sidecar_path(trace_path).write_bytes(b"\x00not a zip archive")
        assert ColumnarTrace.open(trace_path) is None
        assert_datasets_identical(
            baseline, dataset(trace_path, prefer_columnar=True)
        )

    def test_rewritten_jsonl_marks_sidecar_stale(self, trace_path):
        compact_trace(trace_path)
        # Rewrite (not append): same kernels, different sweep — the
        # sidecar's prefix sha no longer matches and must never serve.
        with RecordingBackend(SimulatorBackend(), stream=trace_path) as rec:
            for spec in SPECS:
                rec.measure(spec, SETTINGS[:5])
        assert ColumnarTrace.open(trace_path) is None
        backend = ReplayBackend(trace_path, prefer_columnar=True)
        fresh = backend.measure(SPECS[0], SETTINGS[:5])
        reference = ReplayBackend(trace_path, prefer_columnar=False).measure(
            SPECS[0], SETTINGS[:5]
        )
        assert np.array_equal(fresh.time_ms, reference.time_ms)

    def test_torn_sidecar_recompacts_cleanly(self, trace_path):
        compact_trace(trace_path)
        good = sidecar_path(trace_path).read_bytes()
        sidecar_path(trace_path).write_bytes(good[:100])
        assert compact_trace(trace_path).action == "written"
        assert sidecar_path(trace_path).read_bytes() == good
