"""TraceRegistry: keyed traces, alias-stable slugs, streaming writers."""

import numpy as np
import pytest

from repro.core.config import sample_training_settings
from repro.core.dataset import build_training_dataset
from repro.gpusim.device import make_titan_x
from repro.gpusim.noise import NoiseConfig
from repro.measure import (
    RecordingBackend,
    ReplayError,
    SimulatorBackend,
    TraceKey,
    TraceRegistry,
    noise_settings_hash,
)
from repro.measure.trace_registry import DEFAULT_NOISE_HASH
from repro.synthetic.generator import generate_micro_benchmarks

SETTINGS = sample_training_settings(make_titan_x(), total=8)
SPECS = generate_micro_benchmarks()[::40]


def record_trace():
    rec = RecordingBackend(SimulatorBackend())
    for spec in SPECS:
        rec.measure(spec, SETTINGS)
    return rec.trace


class TestTraceKey:
    def test_slug_is_alias_stable(self):
        assert (
            TraceKey(device="titan-x").slug
            == TraceKey(device="NVIDIA GTX Titan X").slug
        )
        assert TraceKey(device="p100").slug == TraceKey(device="tesla-p100").slug

    def test_parse_shorthand(self):
        key = TraceKey.parse("titan-x/default")
        assert key.device_spec().name == "NVIDIA GTX Titan X"
        assert key.suite == "default"
        assert key.noise == DEFAULT_NOISE_HASH

    def test_parse_full_and_partial(self):
        assert TraceKey.parse("p100").suite == "default"
        key = TraceKey.parse("p100/micro/abc123")
        assert (key.suite, key.noise) == ("micro", "abc123")

    def test_parse_rejects_junk(self):
        with pytest.raises(ReplayError, match="unknown device"):
            TraceKey.parse("gtx-9999/default")
        with pytest.raises(ReplayError, match="bad trace key"):
            TraceKey.parse("a/b/c/d")

    def test_noise_hash_distinguishes_configs(self):
        assert noise_settings_hash() == DEFAULT_NOISE_HASH
        assert noise_settings_hash(NoiseConfig(time_sigma=0.5)) != DEFAULT_NOISE_HASH

    def test_display_round_trips_through_parse(self):
        key = TraceKey(device="tesla-p100", suite="micro")
        assert TraceKey.parse(key.display()).slug == key.slug


class TestRegistry:
    def test_put_get_and_persistence(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        key = TraceKey(device="titan-x")
        trace = record_trace()
        path = registry.put(key, trace)
        assert path.suffix == ".jsonl"
        assert key in registry
        assert registry.get(key).kernels.keys() == trace.kernels.keys()
        assert registry.stats.memory_hits == 1

        fresh = TraceRegistry(tmp_path)
        assert fresh.get(key).kernels.keys() == trace.kernels.keys()
        assert fresh.stats.disk_loads == 1

    def test_memory_eviction(self, tmp_path):
        registry = TraceRegistry(tmp_path, memory_capacity=1)
        trace = record_trace()
        registry.put(TraceKey(device="titan-x", suite="a"), trace)
        registry.put(TraceKey(device="titan-x", suite="b"), trace)
        assert registry.stats.memory_evictions == 1
        registry.get(TraceKey(device="titan-x", suite="a"))  # reloaded from disk
        assert registry.stats.disk_loads == 1

    def test_missing_key_lists_recorded(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        with pytest.raises(ReplayError, match="no recorded trace"):
            registry.get(TraceKey(device="titan-x"))

    def test_device_mismatch_rejected(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        with pytest.raises(ReplayError, match="recorded on"):
            registry.put(TraceKey(device="tesla-p100"), record_trace())

    def test_streaming_writer_lands_in_registry(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        key = TraceKey(device="titan-x", suite="stream")
        backend = SimulatorBackend()
        with registry.writer(key) as writer:
            rec = RecordingBackend(backend, stream=writer)
            direct = build_training_dataset(rec, SPECS, SETTINGS)
        assert key in registry
        assert registry.get(key).meta["suite"] == "stream"

        replayed = build_training_dataset(registry.open_backend(key), SPECS, SETTINGS)
        assert np.array_equal(direct.x, replayed.x)
        assert np.array_equal(direct.y_speedup, replayed.y_speedup)
        assert np.array_equal(direct.y_energy, replayed.y_energy)

    def test_writer_invalidates_stale_memory_copy(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        key = TraceKey(device="titan-x")
        registry.put(key, record_trace())
        assert len(registry.get(key).kernels) == len(SPECS)
        # Rewrite the keyed file through a streaming writer with fewer
        # kernels; get() must re-read the file, not serve the old copy.
        with registry.writer(key) as writer:
            RecordingBackend(SimulatorBackend(), stream=writer).measure(
                SPECS[0], SETTINGS
            )
        assert list(registry.get(key).kernels) == [SPECS[0].name]

    def test_failed_rewrite_preserves_previous_trace(self, tmp_path):
        """A crash mid-campaign must not destroy the last good artifact."""
        registry = TraceRegistry(tmp_path)
        key = TraceKey(device="titan-x")
        registry.put(key, record_trace())
        with pytest.raises(RuntimeError, match="boom"):
            with registry.writer(key) as writer:
                RecordingBackend(SimulatorBackend(), stream=writer).measure(
                    SPECS[0], SETTINGS[:2]
                )
                raise RuntimeError("boom")
        # The registry still serves the complete pre-crash trace; the
        # partial stream is parked beside it for forensics.
        assert len(registry.get(key).kernels) == len(SPECS)
        assert registry.path_for(key).with_name(
            registry.path_for(key).name + ".partial"
        ).exists()

    def test_open_backend_accepts_string_keys(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        registry.put(TraceKey(device="titan-x"), record_trace())
        replay = registry.open_backend("titan-x/default")
        assert replay.device.name == "NVIDIA GTX Titan X"
        assert len(replay.kernels()) == len(SPECS)

    def test_iter_kernels_streams(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        registry.put(TraceKey(device="titan-x"), record_trace())
        names = [name for name, _ in registry.iter_kernels("titan-x")]
        assert sorted(names) == sorted(s.name for s in SPECS)
