"""Resume-layer trace primitives: prefix scans and partial-stream reopen."""

import json

import pytest

from repro.measure import (
    KernelTrace,
    ReplayError,
    TraceWriter,
    scan_stream_records,
)
from repro.measure.trace_registry import TraceKey, TraceRegistry


def record(i):
    return KernelTrace(
        baseline_core_mhz=1001.0,
        baseline_mem_mhz=3505.0,
        baseline_time_ms=1.0 + i,
        baseline_power_w=100.0,
        baseline_energy_j=0.1,
        configs=[(500.0, 810.0), (600.0, 810.0)],
        time_ms=[2.0, 1.5],
        power_w=[80.0, 90.0],
        energy_j=[0.16, 0.135],
    )


@pytest.fixture
def stream(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceWriter(path, device="NVIDIA GTX Titan X") as writer:
        for i in range(4):
            writer.write_kernel(f"k{i}", record(i))
    return path


class TestScanStreamRecords:
    def test_clean_stream_scans_whole(self, stream):
        header, records = scan_stream_records(stream)
        assert header["device"] == "NVIDIA GTX Titan X"
        assert [r.name for r in records] == ["k0", "k1", "k2", "k3"]
        assert records[-1].end_offset == stream.stat().st_size

    def test_end_offsets_are_record_boundaries(self, stream):
        _header, records = scan_stream_records(stream)
        raw = stream.read_bytes()
        for r in records:
            assert raw[: r.end_offset].endswith(b"\n")
            # Re-parsing the slice's last line gives the same kernel.
            last = raw[: r.end_offset].splitlines()[-1]
            assert json.loads(last)["kernel"] == r.name

    def test_torn_tail_tolerated_when_asked(self, stream):
        raw = stream.read_bytes()
        lines = raw.splitlines(keepends=True)
        torn = stream.parent / "torn.jsonl"
        torn.write_bytes(b"".join(lines[:3]) + lines[3][:20])
        header, records = scan_stream_records(torn, tolerate_truncation=True)
        assert [r.name for r in records] == ["k0", "k1"]
        with pytest.raises(ReplayError, match="corrupt|unterminated"):
            scan_stream_records(torn)

    def test_unterminated_final_record_never_counts(self, stream):
        # Even a *parseable* last line without a newline is a crash tail.
        raw = stream.read_bytes().rstrip(b"\n")
        torn = stream.parent / "noeol.jsonl"
        torn.write_bytes(raw)
        _header, records = scan_stream_records(torn, tolerate_truncation=True)
        assert [r.name for r in records] == ["k0", "k1", "k2"]

    def test_mid_file_damage_always_raises(self, stream):
        lines = stream.read_bytes().splitlines(keepends=True)
        bad = stream.parent / "bad.jsonl"
        bad.write_bytes(lines[0] + lines[1] + b"{garbage\n" + lines[3])
        with pytest.raises(ReplayError, match="corrupt"):
            scan_stream_records(bad, tolerate_truncation=True)

    def test_v1_trace_rejected(self, tmp_path):
        v1 = tmp_path / "v1.json"
        v1.write_text('{"format": "repro.measurement-trace", "version": 1}')
        with pytest.raises(ReplayError, match="JSONL"):
            scan_stream_records(v1)


class TestResumePartial:
    def make_partial(self, tmp_path, n=3):
        published = tmp_path / "trace.jsonl"
        writer = TraceWriter(
            published, device="NVIDIA GTX Titan X", atomic=True
        )
        for i in range(n):
            writer.write_kernel(f"k{i}", record(i))
        writer.close(success=False)  # the crash: stream stays .partial
        partial = published.with_name(published.name + ".partial")
        assert partial.exists() and not published.exists()
        return published, partial

    def test_append_then_publish(self, tmp_path):
        published, partial = self.make_partial(tmp_path)
        _header, records = scan_stream_records(partial, tolerate_truncation=True)
        writer = TraceWriter.resume_partial(
            published, device="NVIDIA GTX Titan X", keep_bytes=records[-1].end_offset
        )
        writer.write_kernel("k3", record(3))
        writer.close(success=True)
        assert published.exists() and not partial.exists()
        _header, final = scan_stream_records(published)
        assert [r.name for r in final] == ["k0", "k1", "k2", "k3"]

    def test_resumed_bytes_match_uninterrupted(self, tmp_path):
        published, partial = self.make_partial(tmp_path, n=2)
        # Tear the stream mid-record, as a kill would.
        raw = partial.read_bytes()
        lines = raw.splitlines(keepends=True)
        partial.write_bytes(b"".join(lines[:2]) + lines[2][:15])
        _header, records = scan_stream_records(partial, tolerate_truncation=True)
        writer = TraceWriter.resume_partial(
            published, device="NVIDIA GTX Titan X", keep_bytes=records[-1].end_offset
        )
        writer.write_kernel("k1", record(1))
        writer.close(success=True)

        oneshot = tmp_path / "oneshot.jsonl"
        with TraceWriter(oneshot, device="NVIDIA GTX Titan X") as w:
            w.write_kernel("k0", record(0))
            w.write_kernel("k1", record(1))
        assert published.read_bytes() == oneshot.read_bytes()

    def test_device_mismatch_refused(self, tmp_path):
        published, _partial = self.make_partial(tmp_path)
        with pytest.raises(ReplayError, match="recorded on"):
            TraceWriter.resume_partial(
                published, device="NVIDIA Tesla P100", keep_bytes=10_000
            )

    def test_truncating_into_header_refused(self, tmp_path):
        published, _partial = self.make_partial(tmp_path)
        with pytest.raises(ReplayError, match="header"):
            TraceWriter.resume_partial(
                published, device="NVIDIA GTX Titan X", keep_bytes=3
            )

    def test_missing_partial_refused(self, tmp_path):
        with pytest.raises(ReplayError, match="no partial"):
            TraceWriter.resume_partial(
                tmp_path / "absent.jsonl",
                device="NVIDIA GTX Titan X",
                keep_bytes=100,
            )


class TestRegistryResume:
    def test_scan_resume_sources_lists_partial_then_published(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        key = TraceKey(device="titan-x", suite="quick")
        with registry.writer(key) as writer:
            writer.write_kernel("k0", record(0))
            writer.write_kernel("k1", record(1))
        # Now fake a later crashed run that re-recorded only k0.
        partial = registry.partial_path_for(key)
        published_lines = registry.path_for(key).read_bytes().splitlines(
            keepends=True
        )
        partial.write_bytes(b"".join(published_lines[:2]))
        states = registry.scan_resume_sources(key)
        assert [s.source for s in states] == ["partial", "published"]
        assert states[0].kernel_names() == ["k0"]
        assert states[1].kernel_names() == ["k0", "k1"]
        # scan_resume picks the richest stream (the published one here —
        # a header-only crash leftover must not shadow a complete trace);
        # equal record counts prefer the appendable partial.
        assert registry.scan_resume(key).source == "published"
        partial.write_bytes(b"".join(published_lines))
        assert registry.scan_resume(key).source == "partial"

    def test_scan_resume_falls_back_to_published(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        key = TraceKey(device="titan-x", suite="quick")
        with registry.writer(key) as writer:
            writer.write_kernel("k0", record(0))
        state = registry.scan_resume(key)
        assert state.source == "published"
        assert state.kernel_names() == ["k0"]

    def test_scan_resume_empty_store(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        state = registry.scan_resume(TraceKey(device="titan-x", suite="quick"))
        assert state.source == "none"
        assert not state.resumable
        assert state.kernel_names() == []

    def test_wrong_device_stream_ignored(self, tmp_path):
        registry = TraceRegistry(tmp_path)
        key = TraceKey(device="titan-x", suite="quick")
        partial = registry.partial_path_for(key)
        partial.parent.mkdir(parents=True, exist_ok=True)
        with TraceWriter(partial, device="NVIDIA Tesla P100") as writer:
            writer.write_kernel("k0", record(0))
        assert registry.scan_resume(key).source == "none"
