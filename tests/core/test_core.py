"""Tests for the core pipeline: sampling, dataset, training, prediction."""

import numpy as np
import pytest

from repro.core.config import (
    exhaustive_settings,
    make_sampling_plans,
    mem_l_heuristic_config,
    prediction_candidates,
    sample_training_settings,
)
from repro.core.dataset import build_training_dataset, measure_kernel
from repro.core.pipeline import train_models
from repro.core.predictor import ParetoPredictor
from repro.gpusim.device import make_tesla_p100, make_titan_x
from repro.gpusim.executor import GPUSimulator
from repro.harness.context import quick_context
from repro.pareto.dominance import dominates
from repro.suite import get_benchmark
from repro.suite import test_benchmarks as suite_benchmarks
from repro.synthetic import generate_micro_benchmarks


@pytest.fixture(scope="module")
def device():
    return make_titan_x()


@pytest.fixture(scope="module")
def ctx():
    return quick_context()


class TestSampling:
    def test_paper_sample_size(self, device):
        settings = sample_training_settings(device)
        assert len(settings) == 40

    def test_sample_includes_all_mem_l(self, device):
        settings = sample_training_settings(device)
        mem_l = [s for s in settings if s[1] == 405.0]
        assert len(mem_l) == 6

    def test_sample_covers_all_domains(self, device):
        settings = sample_training_settings(device)
        assert {s[1] for s in settings} == {405.0, 810.0, 3304.0, 3505.0}

    def test_samples_are_real_configs(self, device):
        real = set(device.real_configurations())
        for s in sample_training_settings(device):
            assert s in real

    def test_exhaustive_is_all_real(self, device):
        assert exhaustive_settings(device) == device.real_configurations()

    def test_sampling_plans_increase(self, device):
        plans = make_sampling_plans(device)
        sizes = [p.size for p in plans]
        assert sizes == sorted(sizes)
        assert plans[-1].name == "exhaustive"

    def test_too_small_budget_rejected(self, device):
        with pytest.raises(ValueError):
            sample_training_settings(device, total=2)


class TestPredictionCandidates:
    def test_excludes_mem_l_domain(self, device):
        candidates = prediction_candidates(device)
        assert all(mem != 405.0 for _, mem in candidates)

    def test_covers_three_domains(self, device):
        candidates = prediction_candidates(device)
        assert {mem for _, mem in candidates} == {810.0, 3304.0, 3505.0}

    def test_p100_single_domain_modeled(self):
        dev = make_tesla_p100()
        candidates = prediction_candidates(dev)
        assert candidates == dev.real_configurations()

    def test_heuristic_config_is_last_mem_l(self, device):
        cfg = mem_l_heuristic_config(device)
        assert cfg == (405.0, 405.0)

    def test_p100_has_no_heuristic(self):
        assert mem_l_heuristic_config(make_tesla_p100()) is None


class TestDataset:
    def test_measure_kernel_normalizes_to_baseline(self, device):
        sim = GPUSimulator(device)
        spec = get_benchmark("K-means")
        m = measure_kernel(sim, spec, [device.default_config])
        point = m.points[0]
        assert point.speedup == pytest.approx(1.0, abs=0.05)
        assert point.norm_energy == pytest.approx(1.0, abs=0.05)

    def test_dataset_shapes(self, device):
        sim = GPUSimulator(device)
        specs = generate_micro_benchmarks()[:5]
        settings = sample_training_settings(device, total=12)
        ds = build_training_dataset(sim, specs, settings)
        assert ds.x.shape == (5 * len(settings), 32)
        assert ds.y_speedup.shape == (ds.n_samples,)
        assert ds.n_kernels == 5

    def test_groups_align_with_rows(self, device):
        sim = GPUSimulator(device)
        specs = generate_micro_benchmarks()[:3]
        settings = sample_training_settings(device, total=12)
        ds = build_training_dataset(sim, specs, settings)
        assert len(ds.groups) == ds.n_samples
        assert ds.groups[0] == specs[0].name
        assert ds.groups[-1] == specs[-1].name

    def test_subset(self, ctx):
        ds = ctx.dataset
        mask = np.zeros(ds.n_samples, dtype=bool)
        mask[:10] = True
        sub = ds.subset(mask)
        assert sub.n_samples == 10

    def test_empty_inputs_rejected(self, device):
        sim = GPUSimulator(device)
        with pytest.raises(ValueError):
            build_training_dataset(sim, [], [(1001.0, 3505.0)])
        with pytest.raises(ValueError):
            build_training_dataset(sim, generate_micro_benchmarks()[:1], [])


class TestTrainedModels:
    def test_predictions_roughly_track_measurements(self, ctx):
        """Model sanity: averaged over held-out benchmarks, predicted
        speedup must correlate strongly with measured speedup (the quick
        context is deliberately under-trained, so the bar is moderate)."""
        corrs = []
        for spec in suite_benchmarks():
            objs = ctx.models.predict_objectives(spec.static_features(), ctx.settings)
            m = measure_kernel(ctx.sim, spec, ctx.settings)
            predicted = np.array([o[0] for o in objs])
            measured = np.array([p.speedup for p in m.points])
            corrs.append(np.corrcoef(predicted, measured)[0, 1])
        assert np.mean(corrs) > 0.75
        assert min(corrs) > 0.3

    def test_energy_predictions_positive(self, ctx):
        spec = get_benchmark("MT")
        objs = ctx.models.predict_objectives(spec.static_features(), ctx.settings)
        assert all(e > 0 for _, e in objs)

    def test_custom_model_factories(self, ctx):
        from repro.ml.linear import OLSRegression

        models = train_models(
            ctx.dataset,
            make_speedup=OLSRegression,
            make_energy=OLSRegression,
            settings=ctx.settings,
        )
        assert isinstance(models.speedup_model, OLSRegression)


class TestParetoPredictor:
    def test_predicted_front_nonempty(self, ctx):
        for spec in suite_benchmarks()[:4]:
            result = ctx.predictor.predict_for_spec(spec)
            assert result.size >= 2, spec.name

    def test_front_is_mutually_nondominated_in_modeled_points(self, ctx):
        result = ctx.predictor.predict_for_spec(get_benchmark("K-means"))
        modeled = result.modeled_front()
        for i, a in enumerate(modeled):
            for b in modeled[i + 1 :]:
                assert not dominates(a.objectives, b.objectives)
                assert not dominates(b.objectives, a.objectives)

    def test_mem_l_heuristic_point_present(self, ctx):
        result = ctx.predictor.predict_for_spec(get_benchmark("MD"))
        heuristic = result.heuristic_points()
        assert len(heuristic) == 1
        assert heuristic[0].config == (405.0, 405.0)

    def test_heuristic_can_be_disabled(self, ctx):
        predictor = ParetoPredictor(
            ctx.models, ctx.device, use_mem_l_heuristic=False,
            candidates=ctx.predictor.candidates,
        )
        result = predictor.predict_for_spec(get_benchmark("MD"))
        assert not result.heuristic_points()
        assert all(mem != 405.0 for _, mem in result.configs)

    def test_predict_from_source(self, ctx):
        src = """
        __kernel void axpy(__global const float* x, __global float* y, const float a) {
            int gid = get_global_id(0);
            y[gid] = a * x[gid] + y[gid];
        }
        """
        result = ctx.predictor.predict_from_source(src)
        assert result.kernel == "axpy"
        assert result.size >= 1

    def test_all_points_cover_candidates(self, ctx):
        result = ctx.predictor.predict_for_spec(get_benchmark("AES"))
        assert len(result.all_points) == len(ctx.predictor.candidates)

    def test_front_configs_are_candidates_or_heuristic(self, ctx):
        result = ctx.predictor.predict_for_spec(get_benchmark("Convolution"))
        allowed = set(ctx.predictor.candidates) | {(405.0, 405.0)}
        assert set(result.configs) <= allowed
