"""Streaming dataset assembly: bounded mini-batches, peak-row accounting."""

import numpy as np
import pytest

from repro.core.config import sample_training_settings
from repro.core.dataset import (
    DatasetAssembler,
    MiniBatch,
    build_training_dataset,
    iter_kernel_measurements,
)
from repro.measure import SimulatorBackend
from repro.obs.instruments import DATASET_PEAK_BYTES, DATASET_PEAK_ROWS
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.synthetic import generate_micro_benchmarks


@pytest.fixture(scope="module")
def workload():
    backend = SimulatorBackend()
    specs = generate_micro_benchmarks()[:5]
    settings = sample_training_settings(backend.device, total=8)
    return backend, specs, settings


def stream_assemble(backend, specs, settings, peak_rows):
    batches: list[MiniBatch] = []
    assembler = DatasetAssembler(
        settings, peak_rows=peak_rows, on_batch=batches.append
    )
    for spec, static, measurements in iter_kernel_measurements(
        backend, specs, settings
    ):
        assembler.add(spec, static, measurements)
    return batches, assembler.finish_streaming()


class TestStreamingAssembly:
    def test_concatenated_batches_bit_identical_to_dense(self, workload):
        backend, specs, settings = workload
        dense = build_training_dataset(backend, specs, settings)
        batches, summary = stream_assemble(backend, specs, settings, peak_rows=8)
        assert np.array_equal(np.vstack([b.x for b in batches]), dense.x)
        assert np.array_equal(
            np.concatenate([b.y_speedup for b in batches]), dense.y_speedup
        )
        assert np.array_equal(
            np.concatenate([b.y_energy for b in batches]), dense.y_energy
        )
        assert summary.n_rows == dense.n_samples
        assert summary.n_kernels == len(specs)

    def test_peak_never_exceeds_cap(self, workload):
        backend, specs, settings = workload
        # A cap below one kernel's block (8 rows) forces slicing.
        batches, summary = stream_assemble(backend, specs, settings, peak_rows=3)
        assert all(b.n_rows <= 3 for b in batches)
        assert summary.peak_resident_rows <= 3
        assert summary.peak_rows_cap == 3
        # Bytes account rows x (features + 2 targets) x float64.
        n_cols = batches[0].x.shape[1]
        assert summary.peak_resident_bytes == summary.peak_resident_rows * (
            n_cols + 2
        ) * 8

    def test_peaks_exported_as_gauges(self, workload):
        backend, specs, settings = workload
        registry = MetricsRegistry()
        with use_registry(registry):
            _, summary = stream_assemble(backend, specs, settings, peak_rows=8)
        assert registry.value(DATASET_PEAK_ROWS) == summary.peak_resident_rows
        assert registry.value(DATASET_PEAK_BYTES) == summary.peak_resident_bytes

    def test_gauges_keep_high_water_mark(self, workload):
        backend, specs, settings = workload
        registry = MetricsRegistry()
        with use_registry(registry):
            stream_assemble(backend, specs, settings, peak_rows=8)
            high = registry.value(DATASET_PEAK_ROWS)
            # A smaller later run must not lower the exported peak.
            stream_assemble(backend, specs, settings, peak_rows=3)
        assert registry.value(DATASET_PEAK_ROWS) == high

    def test_dense_finish_unavailable_in_streaming_mode(self, workload):
        backend, specs, settings = workload
        assembler = DatasetAssembler(
            settings, peak_rows=4, on_batch=lambda batch: None
        )
        with pytest.raises(RuntimeError):
            assembler.finish()

    def test_streaming_mode_validation(self, workload):
        _backend, _specs, settings = workload
        with pytest.raises(ValueError, match="peak_rows"):
            DatasetAssembler(settings, on_batch=lambda batch: None)
        with pytest.raises(ValueError, match="on_batch"):
            DatasetAssembler(settings, peak_rows=4)
        with pytest.raises(ValueError, match=">= 1"):
            DatasetAssembler(settings, peak_rows=0, on_batch=lambda batch: None)
