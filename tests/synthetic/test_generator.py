"""Tests for the synthetic micro-benchmark generator (paper §3.3)."""

import pytest

from repro.clkernel.lowering import lower_source
from repro.synthetic.generator import (
    EXPECTED_MICRO_BENCHMARKS,
    generate_micro_benchmarks,
    make_pattern_spec,
    micro_traits,
)
from repro.synthetic.mixes import MIX_RECIPES, all_mixes, render_mix
from repro.synthetic.patterns import INTENSITIES, PATTERNS, render_kernel


class TestPatterns:
    def test_ten_patterns_cover_all_features(self):
        stressed = {p.stressed_feature for p in PATTERNS}
        assert stressed == {
            "int_add", "int_mul", "int_div", "int_bw",
            "float_add", "float_mul", "float_div", "sf",
            "gl_access", "loc_access",
        }

    def test_nine_intensities_powers_of_two(self):
        assert INTENSITIES == (1, 2, 4, 8, 16, 32, 64, 128, 256)

    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
    def test_intensity_reflected_in_counts(self, pattern):
        """Higher intensity must strictly increase the stressed feature's
        weighted count (the pattern's defining property)."""
        low = lower_source(render_kernel(pattern, 4, "k_low")).weighted_counts()
        high = lower_source(render_kernel(pattern, 64, "k_high")).weighted_counts()
        assert high[pattern.stressed_feature] > low[pattern.stressed_feature]

    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
    def test_stressed_feature_prominent_at_max_intensity(self, pattern):
        """At intensity 256 the stressed feature must be a leading share.

        Memory patterns cannot exceed the integer-add share (every access
        carries its address arithmetic — true of real LLVM IR too), so the
        requirement there is a strong floor rather than strict dominance.
        """
        spec = make_pattern_spec(pattern, 256)
        features = spec.static_features()
        share = features[pattern.stressed_feature]
        if pattern.stressed_feature in ("gl_access", "loc_access"):
            assert share >= 0.2
        else:
            others = [
                features[name]
                for name in features.as_dict()
                if name != pattern.stressed_feature
            ]
            assert share > max(others)

    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
    def test_share_grows_with_intensity(self, pattern):
        """Compute patterns: the *share* of the stressed class grows.
        Memory patterns: each access drags address arithmetic along, so the
        share saturates — but the absolute count must still grow."""
        low = make_pattern_spec(pattern, 1).static_features()
        high = make_pattern_spec(pattern, 256).static_features()
        if pattern.stressed_feature in ("gl_access", "loc_access"):
            idx = list(low.as_dict()).index(pattern.stressed_feature)
            assert high.raw_counts[idx] > low.raw_counts[idx]
        else:
            assert high[pattern.stressed_feature] > low[pattern.stressed_feature]

    def test_intensity_validation(self):
        with pytest.raises(ValueError):
            render_kernel(PATTERNS[0], 0, "bad")


class TestMixes:
    def test_sixteen_recipes(self):
        assert len(MIX_RECIPES) == 16

    def test_all_mixes_lower(self):
        for recipe in all_mixes():
            ir = lower_source(render_mix(recipe))
            assert ir.total_instructions() > 0

    def test_local_mixes_use_local_memory(self):
        for recipe in all_mixes():
            if recipe.uses_local:
                ir = lower_source(render_mix(recipe))
                assert ir.uses_local_memory


class TestGenerator:
    def test_exactly_106_micro_benchmarks(self):
        # Paper §3.3: "Overall, we generated 106 micro-benchmarks."
        specs = generate_micro_benchmarks()
        assert len(specs) == EXPECTED_MICRO_BENCHMARKS == 106

    def test_unique_names(self):
        specs = generate_micro_benchmarks()
        names = [s.name for s in specs]
        assert len(set(names)) == len(names)

    def test_pattern_count_structure(self):
        # 10 patterns x 9 intensities + 16 mixes.
        specs = generate_micro_benchmarks()
        pattern_specs = [s for s in specs if not s.name.startswith("b-mix")]
        mix_specs = [s for s in specs if s.name.startswith("b-mix")]
        assert len(pattern_specs) == 90
        assert len(mix_specs) == 16

    def test_all_specs_have_profiles(self):
        for spec in generate_micro_benchmarks()[::10]:
            profile = spec.profile()
            assert profile.total_ops_per_item > 0
            assert profile.work_items > 0

    def test_traits_deterministic(self):
        a = micro_traits("b-int-add-4", "int_add")
        b = micro_traits("b-int-add-4", "int_add")
        assert a == b

    def test_traits_vary_across_benchmarks(self):
        a = micro_traits("b-int-add-4", "int_add")
        b = micro_traits("b-int-add-8", "int_add")
        assert a != b

    def test_traits_within_valid_ranges(self):
        for spec in generate_micro_benchmarks():
            t = spec.traits
            assert 0.0 <= t.cache_hit_rate <= 1.0
            assert 0.05 <= t.coalescing <= 1.0
            assert t.ilp >= 1.0

    def test_memory_patterns_categorized(self):
        specs = {s.name: s for s in generate_micro_benchmarks()}
        assert specs["b-gl-access-64"].category == "memory"
        assert specs["b-int-add-64"].category == "compute"
