"""Tests for the twelve-benchmark test suite (paper §4.2)."""

import pytest

from repro.harness.characterize import characterize_kernel
from repro.harness.context import quick_context
from repro.suite.registry import (
    FIG1_BENCHMARKS,
    FIG5_BENCHMARKS,
    TEST_BENCHMARK_NAMES,
    get_benchmark,
    test_benchmarks as suite_benchmarks,
)


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(TEST_BENCHMARK_NAMES) == 12
        assert len(suite_benchmarks()) == 12

    def test_paper_names_present(self):
        for name in (
            "k-NN", "MT", "Blackscholes", "AES", "MatrixMultiply",
            "Convolution", "MedianFilter", "BitCompression", "MD",
            "K-means", "PerlinNoise", "Flte",
        ):
            assert name in TEST_BENCHMARK_NAMES

    def test_fig_subsets(self):
        assert len(FIG5_BENCHMARKS) == 8
        assert FIG1_BENCHMARKS == ("k-NN", "MT")
        assert set(FIG5_BENCHMARKS) <= set(TEST_BENCHMARK_NAMES)

    def test_lookup(self):
        assert get_benchmark("k-NN").name == "k-NN"
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    def test_all_sources_lower_and_extract(self):
        for spec in suite_benchmarks():
            features = spec.static_features()
            assert sum(features.values) == pytest.approx(1.0), spec.name
            profile = spec.profile()
            assert profile.total_ops_per_item > 0, spec.name

    def test_names_match_spec_names(self):
        for spec in suite_benchmarks():
            assert spec.static_features().kernel_name == spec.name

    def test_local_memory_kernels(self):
        assert get_benchmark("AES").lower().uses_local_memory
        assert get_benchmark("MatrixMultiply").lower().uses_local_memory


class TestCharacterizationShapes:
    """The §4.2 behavioural claims, verified on the simulator."""

    @pytest.fixture(scope="class")
    def ctx(self):
        return quick_context()

    def test_knn_is_compute_dominated(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("k-NN"), ctx.settings)
        assert ch.classify() == "compute"

    def test_mt_is_memory_dominated(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("MT"), ctx.settings)
        assert ch.classify() == "memory"

    def test_blackscholes_is_memory_dominated(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("Blackscholes"), ctx.settings)
        assert ch.classify() == "memory"

    def test_knn_speedup_range_wide(self, ctx):
        # §4.2: k-NN "can double the performance by only changing the
        # core frequency" within the high memory domains.
        ch = characterize_kernel(ctx.sim, get_benchmark("k-NN"), ctx.settings)
        lo, hi = ch.series["H"].speedup_range
        assert hi / lo > 1.8

    def test_mt_speedup_flat_at_high_mem(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("MT"), ctx.settings)
        lo, hi = ch.series["H"].speedup_range
        assert hi - lo < 0.15

    def test_mt_needs_high_memory(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("MT"), ctx.settings)
        assert ch.mem_sensitivity() > 0.5

    def test_energy_minimum_interior_for_knn(self, ctx):
        # Fig. 1b: normalized energy has an interior minimum in core freq.
        ch = characterize_kernel(ctx.sim, get_benchmark("k-NN"), ctx.settings)
        series = ch.series["H"]
        min_core = series.energy_minimum_core_mhz
        assert min(series.core_mhz) < min_core < max(series.core_mhz)

    def test_default_config_near_unity(self, ctx):
        from repro.harness.characterize import default_point
        from repro.harness.runner import sweep_kernel

        sweep = sweep_kernel(
            ctx.sim, get_benchmark("K-means"),
            [ctx.device.default_config] + ctx.settings,
        )
        point = default_point(sweep)
        assert point.speedup == pytest.approx(1.0, abs=0.05)
        assert point.norm_energy == pytest.approx(1.0, abs=0.05)
