"""Kernel-feature cache: identity on hit, invalidation, LRU, stats."""

from repro.features.extractor import ExtractorConfig, FeatureExtractor
from repro.serve.cache import KernelFeatureCache, source_fingerprint

SAXPY = """
__kernel void saxpy(__global float* x, __global float* y, float a) {
  int i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
"""

SAXPY_EDITED = SAXPY.replace("a * x[i] + y[i]", "a * x[i] - y[i]")

TWO_KERNELS = """
__kernel void first(__global float* x) {
  int i = get_global_id(0);
  x[i] = x[i] + 1.0f;
}
__kernel void second(__global float* x) {
  int i = get_global_id(0);
  x[i] = x[i] * x[i];
}
"""


class TestFingerprint:
    def test_deterministic(self):
        assert source_fingerprint(SAXPY) == source_fingerprint(SAXPY)

    def test_source_change_changes_fingerprint(self):
        assert source_fingerprint(SAXPY) != source_fingerprint(SAXPY_EDITED)

    def test_kernel_name_is_part_of_key(self):
        assert source_fingerprint(TWO_KERNELS, "first") != source_fingerprint(
            TWO_KERNELS, "second"
        )

    def test_extractor_config_is_part_of_key(self):
        assert source_fingerprint(SAXPY) != source_fingerprint(
            SAXPY, config=ExtractorConfig(default_trip_count=7)
        )


class TestCacheBehaviour:
    def test_hit_returns_identical_object(self):
        cache = KernelFeatureCache()
        first = cache.get(SAXPY)
        second = cache.get(SAXPY)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_matches_direct_extraction(self):
        cache = KernelFeatureCache()
        cached = cache.get(SAXPY)
        direct = FeatureExtractor().extract(SAXPY)
        assert cached.values == direct.values
        assert cached.kernel_name == direct.kernel_name

    def test_source_edit_invalidates(self):
        cache = KernelFeatureCache()
        original = cache.get(SAXPY)
        edited = cache.get(SAXPY_EDITED)
        assert edited is not original
        assert cache.stats.misses == 2

    def test_kernel_name_selects_entry(self):
        cache = KernelFeatureCache()
        first = cache.get(TWO_KERNELS, "first")
        second = cache.get(TWO_KERNELS, "second")
        assert first.kernel_name == "first"
        assert second.kernel_name == "second"
        assert cache.get(TWO_KERNELS, "first") is first

    def test_lru_eviction(self):
        cache = KernelFeatureCache(capacity=2)
        a = cache.get(SAXPY)
        cache.get(SAXPY_EDITED)
        cache.get(SAXPY)  # refresh a: now SAXPY_EDITED is least recent
        cache.get(TWO_KERNELS, "first")  # evicts SAXPY_EDITED
        assert cache.stats.evictions == 1
        assert cache.get(SAXPY) is a  # still cached
        assert cache.peek(SAXPY_EDITED) is None

    def test_peek_does_not_mutate(self):
        cache = KernelFeatureCache()
        assert cache.peek(SAXPY) is None
        assert cache.stats.requests == 0
        cached = cache.get(SAXPY)
        assert cache.peek(SAXPY) is cached
        assert cache.stats.requests == 1

    def test_clear(self):
        cache = KernelFeatureCache()
        cache.get(SAXPY)
        cache.clear()
        assert len(cache) == 0
        assert cache.peek(SAXPY) is None

    def test_stats_hit_rate(self):
        cache = KernelFeatureCache()
        cache.get(SAXPY)
        cache.get(SAXPY)
        cache.get(SAXPY)
        assert cache.stats.hit_rate == 2 / 3
        assert cache.stats.as_dict()["hits"] == 2
