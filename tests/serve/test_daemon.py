"""ServeDaemon: the micro-batched HTTP front door over a FleetService.

These tests pin the daemon's three contracts (byte identity with direct
``FleetService`` predictions, admission control, hot reload) plus the
HTTP surface itself.  The module store is built from cached quick
contexts — the same published-bundle layout a campaign produces, without
re-running one per module.
"""

import dataclasses
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.harness.context import quick_context
from repro.harness.report import format_front
from repro.obs.instruments import (
    DAEMON_BATCHED_KERNELS_TOTAL,
    DAEMON_BATCHES_TOTAL,
    DAEMON_COALESCED_TOTAL,
    DAEMON_RELOADS_TOTAL,
    DAEMON_SHED_TOTAL,
)
from repro.serve.daemon import DaemonConfig, DaemonError, Overloaded, ServeDaemon
from repro.serve.fleet import FleetService
from repro.serve.registry import ModelKey, ModelRegistry
from repro.store.layout import DAEMON_METRICS_FILENAME, METRICS_SUBDIR, MODELS_SUBDIR

TITAN = "NVIDIA GTX Titan X"
P100 = "NVIDIA Tesla P100"

SAXPY = """
__kernel void saxpy(__global float* x, __global float* y, float a) {
  int i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
"""

SCALE = """
__kernel void scale(__global float* x, float a) {
  int i = get_global_id(0);
  x[i] = a * x[i];
}
"""


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A two-device published-bundle store (campaign-store layout)."""
    root = tmp_path_factory.mktemp("daemon-store")
    registry = ModelRegistry(root / MODELS_SUBDIR)
    for device in (TITAN, P100):
        ctx = quick_context(device=device)
        registry.put(ModelKey(device=device, recipe="quick"), ctx.models)
    return root


def make_daemon(store, **overrides):
    """A started daemon on an ephemeral port, hot-reload poller off."""
    defaults = dict(port=0, batch_window_ms=2.0, reload_interval_s=0.0)
    defaults.update(overrides)
    daemon = ServeDaemon.from_store(store, config=DaemonConfig(**defaults))
    daemon.start()
    return daemon


@pytest.fixture(scope="module")
def daemon(store):
    with ServeDaemon.from_store(
        store,
        config=DaemonConfig(port=0, batch_window_ms=2.0, reload_interval_s=0.0),
    ) as d:
        yield d


@pytest.fixture(scope="module")
def oracle(store):
    """A direct (non-daemon) fleet over the same store."""
    return FleetService.from_campaign_store(store)


def front_bytes(result):
    return [(p.config, p.objectives) for p in result.front]


def request(daemon, method, path, payload=None, raw_body=None):
    host, port = daemon.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = raw_body
        if body is None and payload is not None:
            body = json.dumps(payload).encode("utf-8")
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, daemon):
        status, _, body = request(daemon, "GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["devices"] == [TITAN, P100]
        assert health["config"]["max_batch"] == 32
        assert health["uptime_s"] >= 0

    def test_predict_json_matches_direct_fleet(self, daemon, oracle):
        status, headers, body = request(
            daemon, "POST", "/predict",
            {"device": "titan-x", "source": SAXPY, "name": "saxpy"},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        direct = oracle.predict(SAXPY, kernel_name="saxpy", device="titan-x")
        assert payload["kernel"] == "saxpy"
        assert payload["device"] == TITAN
        # A batch of one runs the same code path shape as a direct call,
        # so the floats are bitwise equal, not merely close.
        assert [
            ((p["core_mhz"], p["mem_mhz"]), (p["speedup"], p["norm_energy"]))
            for p in payload["front"]
        ] == front_bytes(direct)

    def test_predict_text_is_byte_identical_to_cli_rendering(self, daemon, oracle):
        status, headers, body = request(
            daemon, "POST", "/predict?format=text",
            {"device": "p100", "source": SAXPY, "name": "saxpy"},
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        direct = oracle.predict(SAXPY, kernel_name="saxpy", device="p100")
        assert body == (format_front(direct) + "\n").encode("utf-8")

    def test_pareto_alias(self, daemon):
        one = request(
            daemon, "POST", "/predict?format=text",
            {"device": "titan-x", "source": SCALE, "name": "scale"},
        )
        two = request(
            daemon, "POST", "/pareto?format=text",
            {"device": "titan-x", "source": SCALE, "name": "scale"},
        )
        assert one[0] == two[0] == 200
        assert one[2] == two[2]

    def test_predict_batch_preserves_order_and_isolates_errors(self, daemon):
        items = [
            {"device": "titan-x", "source": SAXPY, "name": "saxpy"},
            {"device": "p100", "source": SCALE, "name": "scale"},
            {"device": "no-such-gpu", "source": SAXPY, "name": "saxpy"},
            {"device": "p100", "source": SAXPY, "name": "saxpy"},
            {"device": "titan-x", "source": SCALE, "name": "scale"},
        ]
        status, _, body = request(
            daemon, "POST", "/predict-batch", {"requests": items}
        )
        assert status == 200
        payload = json.loads(body)
        results = payload["results"]
        assert len(results) == len(items)
        assert payload["shed"] == 0
        assert [r.get("kernel") for r in results] == [
            "saxpy", "scale", None, "saxpy", "scale",
        ]
        assert [r.get("device") for r in results] == [
            TITAN, P100, None, P100, TITAN,
        ]
        assert results[2]["status"] == 404
        assert "no-such-gpu" in results[2]["error"]

    def test_predict_batch_text_concatenates_item_renderings(self, daemon, oracle):
        items = [
            {"device": "p100", "source": SCALE, "name": "scale"},
            {"device": "titan-x", "source": SAXPY, "name": "saxpy"},
            {"device": "p100", "source": SAXPY, "name": "saxpy"},
        ]
        status, _, body = request(
            daemon, "POST", "/predict-batch?format=text", {"requests": items}
        )
        assert status == 200
        expected = b"\n".join(
            (
                format_front(
                    oracle.predict(
                        i["source"], kernel_name=i["name"], device=i["device"]
                    )
                )
                + "\n"
            ).encode("utf-8")
            for i in items
        )
        assert body == expected

    def test_unknown_endpoint_404(self, daemon):
        assert request(daemon, "GET", "/nope")[0] == 404
        assert request(daemon, "POST", "/nope", {})[0] == 404

    def test_bad_json_400(self, daemon):
        status, _, body = request(
            daemon, "POST", "/predict", raw_body=b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_missing_fields_400(self, daemon):
        assert request(daemon, "POST", "/predict", {"source": SAXPY})[0] == 400
        assert request(
            daemon, "POST", "/predict", {"device": "titan-x"}
        )[0] == 400
        assert request(daemon, "POST", "/predict-batch", {"requests": []})[0] == 400

    def test_unknown_device_404(self, daemon):
        status, _, body = request(
            daemon, "POST", "/predict",
            {"device": "no-such-gpu", "source": SAXPY, "name": "saxpy"},
        )
        assert status == 404
        assert json.loads(body)["status"] == 404

    def test_stats_json_and_prometheus(self, daemon):
        status, _, body = request(daemon, "GET", "/stats")
        assert status == 200
        names = {f["name"] for f in json.loads(body)["families"]}
        assert "repro_daemon_requests_total" in names
        status, headers, body = request(daemon, "GET", "/stats?format=prom")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE repro_daemon_requests_total counter" in text
        assert "repro_fleet_requests_routed_total" in text
        assert request(daemon, "GET", "/stats?format=bogus")[0] == 400


class TestMicroBatching:
    def test_burst_coalesces_into_one_grouped_pass(self, store):
        daemon = make_daemon(store, batch_window_ms=500.0, max_batch=6)
        try:
            slug = daemon.fleet.slug_for("titan-x")
            futures = [
                daemon.submit("titan-x", source, name)
                for source, name in [
                    (SAXPY, "saxpy"), (SCALE, "scale"), (SAXPY, "saxpy"),
                    (SCALE, "scale"), (SAXPY, "saxpy"), (SCALE, "scale"),
                ]
            ]
            results = [f.result(timeout=30) for f in futures]
            # Duplicates share one prediction *object*, not merely equal
            # answers — the coalescing contract.
            assert results[0] is results[2] is results[4]
            assert results[1] is results[3] is results[5]
            assert results[0].kernel == "saxpy"
            assert results[1].kernel == "scale"
            metrics = daemon.metrics
            assert metrics.value(DAEMON_BATCHES_TOTAL, device=slug) == 1
            assert metrics.value(DAEMON_BATCHED_KERNELS_TOTAL, device=slug) == 2
            assert metrics.value(DAEMON_COALESCED_TOTAL, device=slug) == 4
        finally:
            daemon.close()

    def test_batched_answers_match_direct_fleet(self, store, oracle):
        daemon = make_daemon(store, batch_window_ms=200.0, max_batch=4)
        try:
            futures = [
                daemon.submit(device, source, name)
                for device, source, name in [
                    ("titan-x", SAXPY, "saxpy"),
                    ("p100", SAXPY, "saxpy"),
                    ("titan-x", SCALE, "scale"),
                    ("p100", SCALE, "scale"),
                ]
            ]
            for future, (device, source, name) in zip(futures, [
                ("titan-x", SAXPY, "saxpy"),
                ("p100", SAXPY, "saxpy"),
                ("titan-x", SCALE, "scale"),
                ("p100", SCALE, "scale"),
            ]):
                batched = future.result(timeout=30)
                direct = oracle.predict(source, kernel_name=name, device=device)
                assert [p.config for p in batched.front] == [
                    p.config for p in direct.front
                ]
        finally:
            daemon.close()

    def test_bad_kernel_fails_only_its_own_request(self, store):
        daemon = make_daemon(store, batch_window_ms=200.0, max_batch=3)
        try:
            good1 = daemon.submit("titan-x", SAXPY, "saxpy")
            bad = daemon.submit("titan-x", "this is not OpenCL", "nope")
            good2 = daemon.submit("titan-x", SCALE, "scale")
            assert good1.result(timeout=30).kernel == "saxpy"
            assert good2.result(timeout=30).kernel == "scale"
            with pytest.raises(Exception):
                bad.result(timeout=30)
        finally:
            daemon.close()


class TestAdmissionControl:
    def _block_service(self, daemon, device):
        """Patch the device's service so predict_batch blocks until released."""
        slug = daemon.fleet.slug_for(device)
        service = daemon.service_for_slug(slug)
        entered, release = threading.Event(), threading.Event()
        original = service.predict_batch

        def blocked(requests):
            entered.set()
            assert release.wait(timeout=30), "test never released the service"
            return original(requests)

        service.predict_batch = blocked
        return slug, entered, release

    def test_full_lane_sheds_with_overloaded(self, store):
        daemon = make_daemon(store, max_queue=2, batch_window_ms=1.0, max_batch=1)
        try:
            slug, entered, release = self._block_service(daemon, "titan-x")
            f1 = daemon.submit("titan-x", SAXPY, "saxpy")
            assert entered.wait(timeout=30)
            f2 = daemon.submit("titan-x", SCALE, "scale")
            with pytest.raises(Overloaded) as exc:
                daemon.submit("titan-x", SAXPY, "saxpy")
            assert exc.value.retry_after == 1
            assert daemon.metrics.value(DAEMON_SHED_TOTAL, device=slug) == 1
            release.set()
            assert f1.result(timeout=30).kernel == "saxpy"
            assert f2.result(timeout=30).kernel == "scale"
            # The lane drained, so admission opens up again.
            assert daemon.predict("titan-x", SAXPY, "saxpy").kernel == "saxpy"
        finally:
            daemon.close()

    def test_overload_is_503_with_retry_after_over_http(self, store):
        daemon = make_daemon(store, max_queue=1, batch_window_ms=1.0, max_batch=1)
        try:
            _, entered, release = self._block_service(daemon, "titan-x")
            first: dict = {}

            def post_first():
                first["response"] = request(
                    daemon, "POST", "/predict",
                    {"device": "titan-x", "source": SAXPY, "name": "saxpy"},
                )

            t = threading.Thread(target=post_first)
            t.start()
            try:
                assert entered.wait(timeout=30)
                status, headers, body = request(
                    daemon, "POST", "/predict",
                    {"device": "titan-x", "source": SAXPY, "name": "saxpy"},
                )
                assert status == 503
                assert headers["Retry-After"] == "1"
                assert json.loads(body)["status"] == 503
            finally:
                release.set()
                t.join(timeout=30)
            assert first["response"][0] == 200
            # A full titan lane never backs up the other device's lane.
            assert request(
                daemon, "POST", "/predict",
                {"device": "p100", "source": SAXPY, "name": "saxpy"},
            )[0] == 200
        finally:
            daemon.close()


class TestHotReload:
    def _publish_paper_titan(self, store):
        """Publish a paper-keyed titan bundle — RECIPE_PREFERENCE makes the
        fleet prefer it on reload.  The bundle is the quick titan models
        with a truncated settings menu, so its predictions are visibly
        different from the quick bundle's."""
        registry = ModelRegistry(store / MODELS_SUBDIR)
        key = ModelKey(device=TITAN, recipe="paper")
        models = quick_context(device=TITAN).models
        registry.put(key, dataclasses.replace(models, settings=models.settings[:8]))
        return key

    def test_poll_reload_swaps_routes_without_restart(self, store):
        daemon = make_daemon(store)
        try:
            before = daemon.predict("titan-x", SAXPY, "saxpy")
            assert daemon.poll_reload() is False  # nothing published yet
            key = self._publish_paper_titan(store)
            try:
                assert daemon.poll_reload() is True
                titan_key = next(
                    k for k in daemon.fleet.model_keys() if k.device == TITAN
                )
                assert titan_key.recipe == "paper"
                # The daemon now answers with the new bundle: identical to
                # a service built directly from the published models.
                after = daemon.predict("titan-x", SAXPY, "saxpy")
                oracle = FleetService.from_campaign_store(store)
                expected = oracle.predict(SAXPY, kernel_name="saxpy", device="titan-x")
                assert front_bytes(after) == front_bytes(expected)
                assert front_bytes(after) != front_bytes(before)
                # Repeating the poll with no new publish is a no-op.
                assert daemon.poll_reload() is False
                assert daemon.metrics.value(
                    DAEMON_RELOADS_TOTAL, result="changed"
                ) == 1
                # P100 routing survived untouched.
                assert daemon.predict("p100", SAXPY, "saxpy").kernel == "saxpy"
                assert before.kernel == "saxpy"
            finally:
                ModelRegistry(store / MODELS_SUBDIR).path_for(key).unlink()
            assert daemon.poll_reload() is True  # rollback is a reload too
        finally:
            daemon.close()

    def test_reload_never_changes_an_in_flight_response(self, store):
        daemon = make_daemon(store, batch_window_ms=1.0, max_batch=1)
        try:
            oracle_old = front_bytes(daemon.predict("titan-x", SAXPY, "saxpy"))
            slug = daemon.fleet.slug_for("titan-x")
            old_service = daemon.service_for_slug(slug)
            entered, release = threading.Event(), threading.Event()
            original = old_service.predict_batch

            def blocked(requests):
                entered.set()
                assert release.wait(timeout=30)
                return original(requests)

            old_service.predict_batch = blocked
            in_flight = daemon.submit("titan-x", SAXPY, "saxpy")
            assert entered.wait(timeout=30)
            key = self._publish_paper_titan(store)
            try:
                # Reload lands *while* the old service's pass is blocked.
                assert daemon.poll_reload() is True
                release.set()
                # The in-flight request still carries the old bundle's
                # answer — a batch resolves its service once, up front.
                assert front_bytes(in_flight.result(timeout=30)) == oracle_old
                # New requests resolve a freshly built service: the lane
                # re-resolves per batch, so the swap needs no restart.
                assert daemon.service_for_slug(slug) is not old_service
            finally:
                release.set()
                ModelRegistry(store / MODELS_SUBDIR).path_for(key).unlink()
            daemon.poll_reload()
        finally:
            daemon.close()


class TestLifecycle:
    def test_shutdown_persists_metrics_and_refuses_connections(self, store):
        daemon = make_daemon(store)
        status, _, _ = request(daemon, "GET", "/healthz")
        assert status == 200
        host, port = daemon.address
        daemon.close()
        snapshot_path = store / METRICS_SUBDIR / DAEMON_METRICS_FILENAME
        assert snapshot_path.exists()
        names = {f["name"] for f in json.loads(snapshot_path.read_text())["families"]}
        assert "repro_daemon_requests_total" in names
        assert "repro_fleet_requests_routed_total" in names
        with pytest.raises(ConnectionRefusedError):
            http.client.HTTPConnection(host, port, timeout=5).request(
                "GET", "/healthz"
            )
        daemon.close()  # idempotent

    def test_double_start_raises(self, store):
        daemon = make_daemon(store)
        try:
            with pytest.raises(DaemonError, match="already started"):
                daemon.start()
        finally:
            daemon.close()

    def test_config_validation(self):
        with pytest.raises(DaemonError):
            DaemonConfig(max_batch=0)
        with pytest.raises(DaemonError):
            DaemonConfig(max_queue=0)
        with pytest.raises(DaemonError):
            DaemonConfig(batch_window_ms=-1.0)


class TestCLI:
    def test_serve_daemon_cli_serves_and_shuts_down_cleanly(self, store):
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "serve-daemon", "--store", str(store), "--port", "0",
                "--reload-interval", "0", "--no-warm",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"at http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            port = int(match.group(1))
            deadline = time.monotonic() + 30
            health = None
            while time.monotonic() < deadline:
                try:
                    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
                    conn.request("GET", "/healthz")
                    health = json.loads(conn.getresponse().read())
                    conn.close()
                    break
                except OSError:
                    time.sleep(0.05)
            assert health is not None and health["status"] == "ok"

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request(
                "POST", "/predict",
                body=json.dumps(
                    {"device": "titan-x", "source": SAXPY, "name": "saxpy"}
                ).encode(),
            )
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read())["kernel"] == "saxpy"
            conn.close()

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        except BaseException:
            proc.kill()
            proc.wait(timeout=10)
            raise
        assert proc.returncode == 0, err
        assert "shut down cleanly" in out
