"""Artifact store: state round-trips and bit-identical reloads."""

import json

import numpy as np
import pytest

from repro.harness.context import quick_context
from repro.ml import (
    SVR,
    LassoRegression,
    OLSRegression,
    PolynomialRegression,
    RidgeRegression,
    StandardScaler,
    make_energy_svr,
    make_kernel,
    make_speedup_svr,
    regressor_from_state,
    scaler_from_state,
)
from repro.ml.kernels import kernel_from_state
from repro.ml.scaling import IdentityScaler, MinMaxScaler
from repro.serve.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    load_artifact,
    load_models,
    load_models_with_meta,
    save_artifact,
    save_models,
)
from repro.suite import test_benchmarks as suite_benchmarks


@pytest.fixture(scope="module")
def ctx():
    return quick_context()


@pytest.fixture(scope="module")
def training_data():
    rng = np.random.default_rng(42)
    x = rng.normal(size=(60, 5))
    y = x @ rng.normal(size=5) + 0.1 * rng.normal(size=60)
    return x, y


def json_round_trip(state: dict) -> dict:
    """Force the state through actual JSON text, as the store does."""
    return json.loads(json.dumps(state))


class TestScalerRoundTrip:
    def test_standard_scaler(self, training_data):
        x, _ = training_data
        scaler = StandardScaler().fit(x)
        clone = scaler_from_state(json_round_trip(scaler.to_state()))
        assert np.array_equal(scaler.transform(x), clone.transform(x))

    def test_minmax_scaler(self, training_data):
        x, _ = training_data
        scaler = MinMaxScaler().fit(x)
        clone = scaler_from_state(json_round_trip(scaler.to_state()))
        assert np.array_equal(scaler.transform(x), clone.transform(x))

    def test_identity_scaler(self, training_data):
        x, _ = training_data
        clone = scaler_from_state(json_round_trip(IdentityScaler().to_state()))
        assert np.array_equal(clone.transform(x), x)

    def test_unfitted_scaler_round_trips(self):
        clone = scaler_from_state(StandardScaler().to_state())
        assert clone.mean_ is None and clone.scale_ is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scaler"):
            scaler_from_state({"kind": "nope"})


class TestKernelRoundTrip:
    @pytest.mark.parametrize(
        "kernel",
        [
            make_kernel("linear"),
            make_kernel("rbf", gamma=0.25),
            make_kernel("poly", degree=3, gamma=0.5, coef0=2.0),
        ],
    )
    def test_round_trip(self, kernel):
        clone = kernel_from_state(json_round_trip(kernel.to_state()))
        a = np.arange(12.0).reshape(3, 4)
        b = np.arange(8.0).reshape(2, 4) * 0.5
        assert np.array_equal(kernel(a, b), clone(a, b))


class TestRegressorRoundTrip:
    @pytest.mark.parametrize(
        "make_model",
        [
            lambda: OLSRegression(),
            lambda: RidgeRegression(alpha=0.5),
            lambda: LassoRegression(alpha=0.01),
            lambda: PolynomialRegression(degree=2),
            lambda: make_speedup_svr(),
            lambda: make_energy_svr(),
            lambda: SVR(kernel=make_kernel("poly", degree=2), C=10.0),
        ],
    )
    def test_predictions_bit_identical(self, make_model, training_data):
        x, y = training_data
        model = make_model().fit(x, y)
        clone = regressor_from_state(json_round_trip(model.to_state()))
        assert np.array_equal(model.predict(x), clone.predict(x))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown regressor"):
            regressor_from_state({"kind": "nope"})

    def test_compact_svr_state_keeps_only_support_vectors(self, training_data):
        x, y = training_data
        model = make_energy_svr().fit(x, y)
        state = model.to_state()
        assert len(state["beta"]) == model.n_support_
        assert len(state["x_train"]) == model.n_support_
        clone = regressor_from_state(json_round_trip(state))
        assert np.array_equal(model.predict(x), clone.predict(x))
        with pytest.raises(RuntimeError, match="full training state"):
            clone.dual_objective()

    def test_primal_svr_state_has_no_training_matrix(self, training_data):
        x, y = training_data
        model = make_speedup_svr().fit(x, y)
        state = model.to_state()
        assert state["x_train"] is None and state["beta"] is None
        assert state["coef"] is not None


class TestModelBundleRoundTrip:
    def test_save_load_predictions_bit_identical(self, ctx, tmp_path):
        path = save_models(tmp_path / "m.json", ctx.models)
        clone = load_models(path)
        x = ctx.dataset.x[:50]
        assert np.array_equal(ctx.models.predict_speedup(x), clone.predict_speedup(x))
        assert np.array_equal(ctx.models.predict_energy(x), clone.predict_energy(x))
        assert clone.settings == ctx.models.settings
        assert clone.n_training_samples == ctx.models.n_training_samples
        assert clone.interactions == ctx.models.interactions

    def test_reloaded_pareto_fronts_bit_identical_on_suite(self, ctx, tmp_path):
        """Acceptance: saved+reloaded bundle reproduces every front exactly."""
        from repro.core.predictor import ParetoPredictor

        path = save_models(tmp_path / "m.json", ctx.models)
        clone = load_models(path)
        original = ctx.predictor
        reloaded = ParetoPredictor(
            clone, ctx.device, candidates=original.candidates
        )
        for spec in suite_benchmarks():
            a = original.predict_for_spec(spec)
            b = reloaded.predict_for_spec(spec)
            assert [
                (p.config, p.objectives, p.modeled) for p in a.front
            ] == [(p.config, p.objectives, p.modeled) for p in b.front], spec.name

    def test_artifact_is_compact(self, ctx, tmp_path):
        """Only support vectors ship — not the whole training matrix."""
        path = save_models(tmp_path / "m.json", ctx.models)
        assert path.stat().st_size < 500_000

    def test_meta_round_trips(self, ctx, tmp_path):
        path = save_models(
            tmp_path / "m.json", ctx.models, meta={"device": "X", "recipe": "quick"}
        )
        _models, meta = load_models_with_meta(path)
        assert meta == {"device": "X", "recipe": "quick"}


class TestEnvelopeValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact"):
            load_artifact(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_future_format_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": ARTIFACT_FORMAT_VERSION + 1,
                    "artifact_kind": "trained_models",
                    "payload": {"kind": "trained_models"},
                }
            )
        )
        with pytest.raises(ArtifactError, match="not supported"):
            load_artifact(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = save_artifact(tmp_path / "s.json", {"kind": "standard_scaler"})
        with pytest.raises(ArtifactError, match="expected a 'trained_models'"):
            load_artifact(path, expected_kind="trained_models")

    def test_payload_without_kind_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no 'kind'"):
            save_artifact(tmp_path / "x.json", {"no": "kind"})

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        save_artifact(tmp_path / "a.json", {"kind": "standard_scaler"})
        assert [p.name for p in tmp_path.iterdir()] == ["a.json"]

    def test_overwrite_existing_artifact(self, tmp_path):
        path = tmp_path / "a.json"
        save_artifact(path, {"kind": "standard_scaler"})
        save_artifact(path, {"kind": "identity_scaler"})
        payload, _meta = load_artifact(path)
        assert payload["kind"] == "identity_scaler"
