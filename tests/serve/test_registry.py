"""Model registry: lazy training, persistence, instant reload."""

import numpy as np
import pytest

from repro.core.pipeline import TrainedModels
from repro.harness.context import quick_context
from repro.serve.registry import ModelKey, ModelRegistry


@pytest.fixture(scope="module")
def ctx():
    return quick_context()


@pytest.fixture
def counting_trainer(ctx):
    calls = []

    def trainer(key):
        calls.append(key)
        return ctx.models

    trainer.calls = calls
    return trainer


class TestModelKey:
    def test_slug_is_filesystem_safe(self):
        key = ModelKey(device="NVIDIA GTX Titan X", recipe="paper")
        assert key.slug == "nvidia-gtx-titan-x__paper__interactions"

    def test_distinct_keys_distinct_slugs(self):
        assert ModelKey(recipe="paper").slug != ModelKey(recipe="quick").slug
        assert (
            ModelKey(features="interactions").slug != ModelKey(features="concat").slug
        )

    def test_invalid_features_rejected(self):
        with pytest.raises(ValueError, match="features"):
            ModelKey(features="everything")

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError, match="unknown device"):
            ModelKey(device="TPU v9").device_spec()

    def test_interactions_flag(self):
        assert ModelKey(features="interactions").interactions
        assert not ModelKey(features="concat").interactions


class TestRegistry:
    def test_first_get_trains_and_persists(self, tmp_path, counting_trainer):
        registry = ModelRegistry(root=tmp_path, trainer=counting_trainer)
        key = ModelKey(recipe="quick")
        models = registry.get(key)
        assert isinstance(models, TrainedModels)
        assert len(counting_trainer.calls) == 1
        assert registry.path_for(key).exists()
        assert registry.stats.trainings == 1

    def test_second_get_hits_memory(self, tmp_path, counting_trainer):
        registry = ModelRegistry(root=tmp_path, trainer=counting_trainer)
        key = ModelKey(recipe="quick")
        first = registry.get(key)
        second = registry.get(key)
        assert second is first
        assert len(counting_trainer.calls) == 1
        assert registry.stats.memory_hits == 1

    def test_fresh_registry_loads_from_disk(self, tmp_path, counting_trainer, ctx):
        key = ModelKey(recipe="quick")
        ModelRegistry(root=tmp_path, trainer=counting_trainer).get(key)

        def failing_trainer(_key):
            raise AssertionError("should load from disk, not retrain")

        reloaded_registry = ModelRegistry(root=tmp_path, trainer=failing_trainer)
        reloaded = reloaded_registry.get(key)
        assert reloaded_registry.stats.disk_loads == 1
        x = ctx.dataset.x[:10]
        assert np.array_equal(
            ctx.models.predict_speedup(x), reloaded.predict_speedup(x)
        )

    def test_evict_memory_keeps_disk(self, tmp_path, counting_trainer):
        registry = ModelRegistry(root=tmp_path, trainer=counting_trainer)
        key = ModelKey(recipe="quick")
        registry.get(key)
        registry.evict_memory()
        registry.get(key)
        assert len(counting_trainer.calls) == 1  # reloaded, not retrained
        assert registry.stats.disk_loads == 1

    def test_contains_and_entries(self, tmp_path, counting_trainer):
        registry = ModelRegistry(root=tmp_path, trainer=counting_trainer)
        key = ModelKey(recipe="quick")
        assert key not in registry
        registry.get(key)
        assert key in registry
        assert registry.entries() == [key.slug]

    def test_put_registers_external_bundle(self, tmp_path, ctx):
        registry = ModelRegistry(root=tmp_path)
        key = ModelKey(recipe="quick")
        path = registry.put(key, ctx.models)
        assert path.exists()
        assert registry.get(key) is ctx.models
        assert registry.stats.trainings == 0

    def test_keys_map_to_distinct_files(self, tmp_path, counting_trainer):
        registry = ModelRegistry(root=tmp_path, trainer=counting_trainer)
        registry.get(ModelKey(recipe="quick"))
        registry.get(ModelKey(recipe="quick", features="concat"))
        assert len(registry.entries()) == 2
        assert len(counting_trainer.calls) == 2

    def test_unknown_recipe_fails_at_training(self, tmp_path):
        registry = ModelRegistry(root=tmp_path)
        with pytest.raises(ValueError, match="unknown recipe"):
            registry.get(ModelKey(recipe="exotic"))
