"""Batched inference: equivalence with the sequential per-kernel path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.context import quick_context
from repro.pareto.algorithms import (
    pareto_front_masks,
    pareto_set_brute,
    pareto_set_numpy,
    pareto_set_simple,
)
from repro.suite import test_benchmarks as suite_benchmarks

#: Batched model predictions may differ from the per-kernel path by BLAS
#: sum reassociation (shape-dependent blocking) — a few ulp, nothing more.
ULP_TOL = 1e-12


@pytest.fixture(scope="module")
def ctx():
    return quick_context()


@pytest.fixture(scope="module")
def statics(ctx):
    return [spec.static_features() for spec in ctx.micro_benchmarks[:12]]


point_lists = st.lists(
    st.tuples(
        st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 2)),
        st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 2)),
    ),
    max_size=40,
)


class TestVectorizedPareto:
    @settings(max_examples=200, deadline=None)
    @given(points=point_lists)
    def test_numpy_matches_algorithm_one(self, points):
        assert pareto_set_numpy(points) == pareto_set_simple(points)

    @settings(max_examples=200, deadline=None)
    @given(points=point_lists)
    def test_numpy_matches_brute(self, points):
        assert pareto_set_numpy(points) == pareto_set_brute(points)

    def test_empty(self):
        assert pareto_set_numpy([]) == []

    @settings(max_examples=100, deadline=None)
    @given(points=st.lists(point_lists.filter(bool), min_size=1, max_size=5))
    def test_masks_match_per_kernel(self, points):
        width = min(len(p) for p in points)
        rows = [p[:width] for p in points]
        speedups = np.asarray([[s for s, _ in row] for row in rows])
        energies = np.asarray([[e for _, e in row] for row in rows])
        masks = pareto_front_masks(speedups, energies)
        for row, mask in zip(rows, masks):
            assert np.flatnonzero(mask).tolist() == pareto_set_simple(row)

    def test_masks_shape_validation(self):
        with pytest.raises(ValueError):
            pareto_front_masks(np.zeros(3), np.zeros(3))


class TestObjectiveBatching:
    def test_matches_per_kernel_objectives(self, ctx, statics):
        models = ctx.models
        configs = ctx.predictor.candidates
        batched = models.predict_objectives_batch(statics, configs)
        assert len(batched) == len(statics)
        for static, batch_objs in zip(statics, batched):
            single = models.predict_objectives(static, configs)
            assert len(batch_objs) == len(single) == len(configs)
            for (bs, be), (ss, se) in zip(batch_objs, single):
                assert bs == pytest.approx(ss, abs=ULP_TOL)
                assert be == pytest.approx(se, abs=ULP_TOL)

    def test_empty_batch(self, ctx):
        assert ctx.models.predict_objectives_batch([], ctx.predictor.candidates) == []

    def test_arrays_shape(self, ctx, statics):
        configs = ctx.predictor.candidates
        speedups, energies = ctx.models.predict_objective_arrays(statics, configs)
        assert speedups.shape == energies.shape == (len(statics), len(configs))


class TestPredictorBatch:
    def test_batch_matches_sequential(self, ctx, statics):
        predictor = ctx.predictor
        sequential = [predictor.predict_from_features(s) for s in statics]
        batched = predictor.predict_batch(statics)
        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert bat.kernel == seq.kernel
            # Identical front membership, same order.
            assert [p.config for p in bat.front] == [p.config for p in seq.front]
            assert [p.modeled for p in bat.front] == [p.modeled for p in seq.front]
            for bp, sp in zip(bat.front, seq.front):
                assert bp.speedup == pytest.approx(sp.speedup, abs=ULP_TOL)
                assert bp.norm_energy == pytest.approx(sp.norm_energy, abs=ULP_TOL)

    def test_batch_on_suite_benchmarks(self, ctx):
        specs = suite_benchmarks()
        statics = [spec.static_features() for spec in specs]
        batched = ctx.predictor.predict_batch(statics)
        for spec, result in zip(specs, batched):
            single = ctx.predictor.predict_for_spec(spec)
            assert result.kernel == spec.name
            assert [p.config for p in result.front] == [
                p.config for p in single.front
            ]

    def test_all_points_materialize_lazily(self, ctx, statics):
        result = ctx.predictor.predict_batch(statics[:1])[0]
        points = result.all_points
        assert len(points) == len(ctx.predictor.candidates)
        assert result.all_points is points  # materialized once
        single = ctx.predictor.predict_from_features(statics[0])
        assert [p.config for p in points] == [p.config for p in single.all_points]

    def test_empty_batch(self, ctx):
        assert ctx.predictor.predict_batch([]) == []

    def test_batch_preserves_order(self, ctx, statics):
        shuffled = list(reversed(statics))
        results = ctx.predictor.predict_batch(shuffled)
        assert [r.kernel for r in results] == [s.kernel_name for s in shuffled]
