"""FleetService: multi-device routing over a campaign store.

The module-scoped fixture runs one real (quick) two-device campaign, so
every test here exercises the actual deployment path: campaign store on
disk → fleet discovery from envelope metadata → routed predictions.
"""

import json

import pytest

from repro.campaign import MODELS_SUBDIR, CampaignPlan, run_campaign
from repro.cli import main as cli_main
from repro.gpusim.device import resolve_device
from repro.serve.fleet import FleetError, FleetService
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.service import PredictionService

TITAN = "NVIDIA GTX Titan X"
P100 = "NVIDIA Tesla P100"

SAXPY = """
__kernel void saxpy(__global float* x, __global float* y, float a) {
  int i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
"""

SCALE = """
__kernel void scale(__global float* x, float a) {
  int i = get_global_id(0);
  x[i] = a * x[i];
}
"""


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-store")
    plan = CampaignPlan(devices=("titan-x", "tesla-p100"), recipe="quick")
    run_campaign(plan, store_root=root)
    return root


@pytest.fixture
def fleet(store):
    return FleetService.from_campaign_store(store)


def front_bytes(result):
    """The full prediction, exact: configs and float objectives."""
    return [(p.config, p.objectives) for p in result.front]


class TestDiscovery:
    def test_finds_every_campaign_device(self, fleet):
        assert fleet.devices() == [TITAN, P100]
        assert [k.recipe for k in fleet.model_keys()] == ["quick", "quick"]

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FleetError, match="not a campaign store"):
            FleetService.from_campaign_store(tmp_path / "nowhere")

    def test_empty_models_dir_raises(self, tmp_path):
        (tmp_path / MODELS_SUBDIR).mkdir()
        with pytest.raises(FleetError, match="no servable model bundles"):
            FleetService.from_campaign_store(tmp_path)

    def test_recipe_filter_mismatch_raises(self, store):
        with pytest.raises(FleetError, match="recipe='paper'"):
            FleetService.from_campaign_store(store, recipe="paper")

    def test_foreign_files_are_ignored(self, store):
        junk = store / MODELS_SUBDIR / "not-a-bundle.json"
        junk.write_text("{\"hello\": 1}")
        try:
            assert FleetService.from_campaign_store(store).devices() == [
                TITAN,
                P100,
            ]
        finally:
            junk.unlink()

    def test_recipe_preference_and_filter(self, store):
        # Add a second (paper-keyed) titan bundle: the default routing
        # prefers it, an explicit recipe filter overrides the preference.
        registry = ModelRegistry(store / MODELS_SUBDIR)
        quick_key = ModelKey(device=TITAN, recipe="quick")
        paper_key = ModelKey(device=TITAN, recipe="paper")
        path = registry.put(paper_key, registry.get(quick_key))
        try:
            def titan_recipe(fleet):
                return next(
                    k.recipe
                    for k in fleet.model_keys()
                    if k.device_spec().name == TITAN
                )

            assert titan_recipe(FleetService.from_campaign_store(store)) == "paper"
            assert (
                titan_recipe(
                    FleetService.from_campaign_store(store, recipe="quick")
                )
                == "quick"
            )
        finally:
            path.unlink()

    def test_duplicate_device_keys_rejected(self, store):
        registry = ModelRegistry(store / MODELS_SUBDIR)
        key = ModelKey(device=TITAN, recipe="quick")
        with pytest.raises(FleetError, match="one bundle per device"):
            FleetService(
                registry, [key, ModelKey(device="titan-x", recipe="quick")]
            )


class TestRouting:
    def test_alias_and_full_name_share_one_service(self, fleet):
        by_alias = fleet.service_for("titan-x")
        assert fleet.service_for(TITAN) is by_alias
        assert fleet.service_for("titanx") is by_alias
        assert fleet.stats.service_loads == 1
        assert fleet.stats.service_hits == 2

    def test_unknown_device_error_lists_fleet(self, fleet):
        with pytest.raises(FleetError, match="unknown device") as err:
            fleet.predict(SAXPY, device="gtx-9999")
        assert TITAN in str(err.value)
        assert P100 in str(err.value)

    def test_registered_but_unmodeled_device_error_lists_fleet(self, fleet):
        # The V100 exists in the device registry but ran in no campaign leg.
        with pytest.raises(FleetError, match="no model for device") as err:
            fleet.predict(SAXPY, device="v100")
        assert "V100" in str(err.value)
        assert TITAN in str(err.value)

    def test_routed_prediction_is_byte_identical_to_direct_service(
        self, store, fleet
    ):
        # Acceptance criterion: the fleet adds routing, never a different
        # answer — byte-identical to a directly-constructed single-device
        # service over the same bundle.
        for device in ("titan-x", "tesla-p100"):
            key = ModelKey(device=resolve_device(device).name, recipe="quick")
            direct = PredictionService(
                models=ModelRegistry(store / MODELS_SUBDIR).get(key),
                device=key.device_spec(),
            )
            assert front_bytes(
                fleet.predict(SAXPY, device=device)
            ) == front_bytes(direct.predict(SAXPY))

    def test_pareto_front_for_is_the_routed_predict(self, fleet):
        assert front_bytes(
            fleet.pareto_front_for("p100", SAXPY)
        ) == front_bytes(fleet.predict(SAXPY, device="tesla-p100"))

    def test_devices_differ(self, fleet):
        # Sanity: routing matters — the two devices disagree on the front.
        titan = fleet.predict(SAXPY, device="titan-x")
        p100 = fleet.predict(SAXPY, device="p100")
        assert front_bytes(titan) != front_bytes(p100)


class TestBatch:
    def test_cross_device_batch_in_request_order(self, fleet):
        results = fleet.predict_batch(
            [
                ("titan-x", SAXPY),
                ("p100", SAXPY, "saxpy"),
                (TITAN, SAXPY),
            ]
        )
        assert front_bytes(results[0]) == front_bytes(
            fleet.predict(SAXPY, device="titan-x")
        )
        assert front_bytes(results[1]) == front_bytes(
            fleet.predict(SAXPY, device="tesla-p100")
        )
        assert front_bytes(results[0]) == front_bytes(results[2])

    def test_batch_groups_by_device(self, fleet):
        fleet.predict_batch([("titan-x", SAXPY), ("titanx", SAXPY)])
        titan_stats = fleet.service_for("titan-x").stats
        assert titan_stats.batch_requests == 1
        assert titan_stats.kernels_served == 2

    def test_bare_string_requests_rejected(self, fleet):
        with pytest.raises(FleetError, match="must name a device"):
            fleet.predict_batch([SAXPY])

    def test_interleaved_devices_preserve_request_order(self, fleet):
        # Grouping by device reorders the *model passes*, never the
        # results: distinct kernels alternating devices come back exactly
        # where their requests went in.
        items = [
            ("titan-x", SAXPY, "saxpy"),
            ("p100", SCALE, "scale"),
            ("titan-x", SCALE, "scale"),
            ("p100", SAXPY, "saxpy"),
        ]
        results = fleet.predict_batch(items)
        assert [r.kernel for r in results] == ["saxpy", "scale", "scale", "saxpy"]
        for (device, source, name), result in zip(items, results):
            direct = fleet.predict(source, kernel_name=name, device=device)
            assert [p.config for p in result.front] == [
                p.config for p in direct.front
            ]

    def test_unknown_device_mid_batch_does_no_partial_work(self, store):
        # Slug resolution covers the whole batch before any model pass, so
        # a bad device fails the batch atomically: no kernel is served, no
        # feature extraction pollutes the shared cache.
        fleet = FleetService.from_campaign_store(store)
        fleet.predict(SAXPY, device="titan-x")  # warm one service
        served_before = fleet.stats_summary()["merged"]["kernels_served"]
        misses_before = fleet.feature_cache.stats.misses
        routed_before = fleet.stats.requests_routed
        fresh_kernel = SAXPY.replace("saxpy", "saxpy_unseen")
        with pytest.raises(FleetError, match="no-such-gpu"):
            fleet.predict_batch(
                [
                    ("titan-x", fresh_kernel, "saxpy_unseen"),
                    ("no-such-gpu", fresh_kernel, "saxpy_unseen"),
                    ("p100", fresh_kernel, "saxpy_unseen"),
                ]
            )
        assert fleet.stats_summary()["merged"]["kernels_served"] == served_before
        assert fleet.feature_cache.stats.misses == misses_before
        assert fleet.stats.requests_routed == routed_before

    def test_eviction_racing_a_batch_still_answers_correctly(self, store):
        # With max_services=1, a cross-device batch forces an eviction
        # between its two grouped passes; both groups must still serve
        # from a fully loaded service and match direct predictions.
        fleet = FleetService.from_campaign_store(store, max_services=1)
        results = fleet.predict_batch(
            [
                ("titan-x", SAXPY, "saxpy"),
                ("p100", SAXPY, "saxpy"),
                ("titan-x", SCALE, "scale"),
                ("p100", SCALE, "scale"),
            ]
        )
        assert fleet.stats.service_evictions >= 1
        assert len(fleet.loaded_devices()) == 1
        oracle = FleetService.from_campaign_store(store)
        for (device, source, name), result in zip(
            [
                ("titan-x", SAXPY, "saxpy"),
                ("p100", SAXPY, "saxpy"),
                ("titan-x", SCALE, "scale"),
                ("p100", SCALE, "scale"),
            ],
            results,
        ):
            direct = oracle.predict(source, kernel_name=name, device=device)
            assert front_bytes(result) == front_bytes(direct)


class TestSharedFeatureCache:
    def test_kernel_extracted_once_hits_across_devices(self, fleet):
        # Acceptance criterion: static features are device-independent, so
        # a kernel extracted for titan-x must hit the cache on p100.
        fleet.predict(SAXPY, device="titan-x")
        hits_before = fleet.feature_cache.stats.hits
        fleet.predict(SAXPY, device="p100")
        assert fleet.feature_cache.stats.hits == hits_before + 1
        assert fleet.feature_cache.stats.misses == 1

    def test_same_features_object_served_to_both_devices(self, fleet):
        titan_features = fleet.service_for("titan-x").features_for(SAXPY)
        p100_features = fleet.service_for("p100").features_for(SAXPY)
        assert p100_features is titan_features


class TestLRU:
    def test_eviction_keeps_only_the_bound(self, store):
        fleet = FleetService.from_campaign_store(store, max_services=1)
        fleet.predict(SAXPY, device="titan-x")
        fleet.predict(SAXPY, device="p100")
        assert fleet.loaded_devices() == [P100]
        assert fleet.stats.service_evictions == 1
        # The registry's in-process bundle copy is dropped with the
        # service, so the bound actually caps memory.
        assert len(fleet.registry._store) == 1

    def test_counters_survive_eviction_and_reload(self, store):
        fleet = FleetService.from_campaign_store(store, max_services=1)
        fleet.predict(SAXPY, device="titan-x")
        fleet.predict(SAXPY, device="p100")  # evicts titan-x
        fleet.predict(SAXPY, device="titan-x")  # reloads from disk
        assert fleet.stats.service_loads == 3
        per_device = fleet.stats_summary()["per_device"]
        assert per_device["nvidia-gtx-titan-x"]["kernels_served"] == 2
        assert per_device["nvidia-tesla-p100"]["kernels_served"] == 1

    def test_reloaded_service_predicts_identically(self, store):
        fleet = FleetService.from_campaign_store(store, max_services=1)
        before = front_bytes(fleet.predict(SAXPY, device="titan-x"))
        fleet.predict(SAXPY, device="p100")  # evict
        assert front_bytes(fleet.predict(SAXPY, device="titan-x")) == before


class TestWarmAndStats:
    def test_warm_preloads_every_device(self, fleet):
        assert fleet.warm() == [TITAN, P100]
        loads = fleet.stats.service_loads
        fleet.predict(SAXPY, device="titan-x")
        fleet.predict(SAXPY, device="p100")
        assert fleet.stats.service_loads == loads

    def test_warm_selected_devices(self, fleet):
        assert fleet.warm(["p100"]) == [P100]
        assert fleet.loaded_devices() == [P100]

    def test_merged_counters_sum_devices(self, fleet):
        fleet.predict(SAXPY, device="titan-x")
        fleet.predict_batch([("p100", SAXPY), ("titan-x", SAXPY)])
        summary = fleet.stats_summary()
        per_device = summary["per_device"]
        assert summary["merged"]["kernels_served"] == sum(
            d["kernels_served"] for d in per_device.values()
        ) == 3
        assert summary["routing"]["requests_routed"] == 3
        assert summary["routing"]["batches_routed"] == 1

    def test_shared_cache_reported_once_at_top_level(self, fleet):
        fleet.predict(SAXPY, device="titan-x")
        summary = fleet.stats_summary()
        assert "feature_cache" in summary
        assert all(
            "feature_cache" not in d for d in summary["per_device"].values()
        )


class TestCLI:
    @pytest.fixture
    def kernel_file(self, tmp_path):
        path = tmp_path / "saxpy.cl"
        path.write_text(SAXPY)
        return path

    def test_serve_status_lists_devices(self, store, capsys):
        assert cli_main(["serve-status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2 device(s) servable" in out
        assert TITAN in out
        assert P100 in out
        assert "titan-x" in out  # aliases column

    def test_serve_status_bad_store_errors(self, tmp_path, capsys):
        assert cli_main(["serve-status", "--store", str(tmp_path)]) == 2
        assert "not a campaign store" in capsys.readouterr().err

    def test_predict_from_store(self, store, kernel_file, capsys):
        code = cli_main(
            [
                "predict", str(kernel_file),
                "--device", "p100",
                "--store", str(store),
            ]
        )
        assert code == 0
        assert "predicted Pareto set for 'saxpy'" in capsys.readouterr().out

    def test_predict_quick_narrows_to_quick_bundles(
        self, store, kernel_file, capsys
    ):
        # --quick must not be silently ignored on the fleet path: it
        # filters routing to quick-recipe bundles (this store's only kind).
        code = cli_main(
            [
                "predict", str(kernel_file),
                "--device", "p100",
                "--quick",
                "--store", str(store),
            ]
        )
        assert code == 0
        assert "predicted Pareto set" in capsys.readouterr().out

    def test_predict_from_store_requires_device(
        self, store, kernel_file, capsys
    ):
        code = cli_main(
            ["predict", str(kernel_file), "--store", str(store)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--device required" in err
        assert P100 in err

    def test_predict_model_and_store_conflict(
        self, store, kernel_file, capsys
    ):
        code = cli_main(
            [
                "predict", str(kernel_file),
                "--model", "whatever.json",
                "--store", str(store),
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_predict_batch_from_store_with_stats(
        self, store, kernel_file, capsys
    ):
        code = cli_main(
            [
                "predict-batch", str(kernel_file), str(kernel_file),
                "--device", "titan-x",
                "--store", str(store),
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("predicted Pareto set") == 2
        assert "-- fleet stats" in out
        assert "feature_cache.hits: 1" in out
        assert "routing.requests_routed: 2" in out

    def test_predict_batch_requests_file_routes_devices(
        self, store, kernel_file, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "# a comment and a blank line are skipped\n"
            "\n"
            f'{{"device": "titan-x", "kernel": "{kernel_file}"}}\n'
            f'{{"device": "p100", "source": {json.dumps(SAXPY)}, '
            f'"name": "saxpy"}}\n'
        )
        code = cli_main(
            ["predict-batch", "--requests", str(requests), "--store", str(store)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("predicted Pareto set for 'saxpy'") == 2
        assert f"== {kernel_file} @ titan-x" in out
        assert "== saxpy @ p100" in out

    def test_predict_batch_requests_file_default_device(
        self, store, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(f'{{"source": {json.dumps(SAXPY)}, "name": "saxpy"}}\n')
        code = cli_main(
            [
                "predict-batch", "--requests", str(requests),
                "--device", "p100", "--store", str(store),
            ]
        )
        assert code == 0
        assert "== saxpy @ p100" in capsys.readouterr().out

    def test_predict_batch_requests_and_paths_conflict(
        self, store, kernel_file, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(f'{{"kernel": "{kernel_file}"}}\n')
        code = cli_main(
            [
                "predict-batch", str(kernel_file),
                "--requests", str(requests), "--store", str(store),
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "line, diagnostic",
        [
            ("{not json", "not valid JSON"),
            ('["a", "list"]', "must be a JSON object"),
            ('{"device": "titan-x"}', "exactly one of"),
            ('{"source": "x", "kernel": "y"}', "exactly one of"),
            ('{"kernel": "/nowhere/missing.cl"}', "kernel file not found"),
        ],
    )
    def test_predict_batch_requests_file_diagnostics(
        self, store, tmp_path, capsys, line, diagnostic
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("# header comment\n" + line + "\n")
        code = cli_main(
            ["predict-batch", "--requests", str(requests), "--store", str(store)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert diagnostic in err
        assert f"{requests}:2" in err  # path:lineno points at the bad line

    def test_predict_batch_requests_file_empty(self, store, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("# only comments\n\n")
        code = cli_main(
            ["predict-batch", "--requests", str(requests), "--store", str(store)]
        )
        assert code == 2
        assert "no requests" in capsys.readouterr().err

    def test_predict_batch_requests_missing_file(self, store, capsys):
        code = cli_main(
            [
                "predict-batch", "--requests", "/nowhere/reqs.jsonl",
                "--store", str(store),
            ]
        )
        assert code == 2
        assert "file not found" in capsys.readouterr().err

    def test_predict_batch_requests_devices_need_a_store(
        self, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(f'{{"device": "titan-x", "source": {json.dumps(SAXPY)}}}\n')
        code = cli_main(
            ["predict-batch", "--requests", str(requests), "--quick"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "no fleet to route them" in err
        assert "add --store" in err

    def test_predict_batch_requests_service_path(self, tmp_path, capsys):
        # Without --store the request file feeds the single in-process
        # service, as long as no line tries to route by device.
        requests = tmp_path / "requests.jsonl"
        requests.write_text(f'{{"source": {json.dumps(SAXPY)}, "name": "saxpy"}}\n')
        code = cli_main(["predict-batch", "--requests", str(requests), "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== saxpy" in out
        assert "predicted Pareto set for 'saxpy'" in out

    def test_cli_matches_library_routing(self, store, fleet, kernel_file, capsys):
        assert (
            cli_main(
                [
                    "predict", str(kernel_file),
                    "--device", "titan-x",
                    "--store", str(store),
                ]
            )
            == 0
        )
        cli_out = capsys.readouterr().out
        result = fleet.predict(SAXPY, device="titan-x")
        for point in result.front:
            assert f"{point.core_mhz:.0f}" in cli_out
