"""PredictionService facade + CLI round trip through saved artifacts."""

import pytest

from repro.cli import main as cli_main
from repro.harness.context import quick_context
from repro.serve.artifacts import save_models
from repro.serve.cache import KernelFeatureCache
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.service import PredictionService, ServiceError
from repro.suite import test_benchmarks as suite_benchmarks

SAXPY = """
__kernel void saxpy(__global float* x, __global float* y, float a) {
  int i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
"""


@pytest.fixture(scope="module")
def ctx():
    return quick_context()


@pytest.fixture
def service(ctx):
    return PredictionService(models=ctx.models, device=ctx.device)


class TestServicePredictions:
    def test_single_matches_interactive_pipeline(self, ctx, service):
        spec = suite_benchmarks()[0]
        served = service.predict(spec.source, kernel_name=spec.kernel_name)
        direct = ctx.predictor.predict_from_source(
            spec.source, kernel_name=spec.kernel_name
        )
        assert [(p.config, p.objectives) for p in served.front] == [
            (p.config, p.objectives) for p in direct.front
        ]

    def test_candidates_derived_from_training_settings(self, ctx, service):
        assert service.predictor.candidates == ctx.predictor.candidates

    def test_batch_matches_single(self, service):
        specs = suite_benchmarks()[:3]
        requests = [(s.source, s.kernel_name) for s in specs]
        batched = service.predict_batch(requests)
        for (source, name), bat in zip(requests, batched):
            single = service.predict(source, kernel_name=name)
            assert [p.config for p in bat.front] == [p.config for p in single.front]

    def test_plain_string_requests(self, service):
        results = service.predict_batch([SAXPY, SAXPY])
        assert len(results) == 2
        assert results[0].kernel == "saxpy"

    def test_repeat_requests_hit_feature_cache(self, service):
        service.predict(SAXPY)
        service.predict(SAXPY)
        service.predict_batch([SAXPY])
        stats = service.stats_summary()
        assert stats["feature_cache"]["misses"] == 1
        assert stats["feature_cache"]["hits"] == 2

    def test_service_stats_dict_carries_cache_counters(self, service):
        """ServiceStats.as_dict() alone must show the warm-cache effect —
        operators read it via `repro predict-batch --stats`."""
        service.predict(SAXPY)
        service.predict(SAXPY)
        stats = service.stats.as_dict()
        assert stats["feature_cache"]["hits"] == 1
        assert stats["feature_cache"]["misses"] == 1
        assert stats["feature_cache"]["hit_rate"] == 0.5

    def test_standalone_service_stats_omit_absent_cache(self):
        from repro.serve.service import ServiceStats

        assert "feature_cache" not in ServiceStats().as_dict()

    def test_stats_accounting(self, service):
        service.predict(SAXPY)
        service.predict_batch([SAXPY, SAXPY, SAXPY])
        stats = service.stats_summary()
        assert stats["single_requests"] == 1
        assert stats["batch_requests"] == 1
        assert stats["kernels_served"] == 4
        assert stats["extract_seconds"] >= 0.0
        assert stats["predict_seconds"] > 0.0
        assert stats["candidates"] == len(service.predictor.candidates)

    def test_shared_cache_across_services(self, ctx):
        cache = KernelFeatureCache()
        first = PredictionService(models=ctx.models, device=ctx.device, cache=cache)
        second = PredictionService(models=ctx.models, device=ctx.device, cache=cache)
        first.predict(SAXPY)
        second.predict(SAXPY)
        assert cache.stats.hits == 1


class TestServiceFromArtifact:
    def test_from_artifact_predicts_identically(self, ctx, service, tmp_path):
        path = save_models(
            tmp_path / "m.json", ctx.models, meta={"device": ctx.device.name}
        )
        loaded = PredictionService.from_artifact(path)
        assert loaded.device.name == ctx.device.name
        spec = suite_benchmarks()[0]
        a = service.predict(spec.source, kernel_name=spec.kernel_name)
        b = loaded.predict(spec.source, kernel_name=spec.kernel_name)
        assert [(p.config, p.objectives) for p in a.front] == [
            (p.config, p.objectives) for p in b.front
        ]

    def test_from_registry(self, ctx, tmp_path):
        registry = ModelRegistry(root=tmp_path, trainer=lambda key: ctx.models)
        svc = PredictionService.from_registry(registry, ModelKey(recipe="quick"))
        assert svc.predict(SAXPY).size >= 1
        assert registry.stats.trainings == 1

    def test_artifact_without_device_meta_rejected(self, ctx, tmp_path):
        path = save_models(tmp_path / "anon.json", ctx.models)  # no meta
        with pytest.raises(ServiceError, match="names no known device"):
            PredictionService.from_artifact(path)

    def test_mismatched_device_rejected(self, ctx, tmp_path):
        from repro.gpusim.device import make_tesla_p100

        path = save_models(
            tmp_path / "m.json", ctx.models, meta={"device": ctx.device.name}
        )
        # Titan X training settings don't exist on the P100 frequency menus.
        with pytest.raises(ServiceError, match="does not fit device"):
            PredictionService.from_artifact(path, device=make_tesla_p100())


class TestCLI:
    @pytest.fixture
    def kernel_file(self, tmp_path):
        path = tmp_path / "saxpy.cl"
        path.write_text(SAXPY)
        return path

    @pytest.fixture
    def model_file(self, ctx, tmp_path):
        return save_models(
            tmp_path / "models.json", ctx.models, meta={"device": ctx.device.name}
        )

    def test_train_save(self, tmp_path, capsys):
        target = tmp_path / "trained.json"
        assert cli_main(["train", "--save", str(target), "--quick"]) == 0
        assert target.exists()
        out = capsys.readouterr().out
        assert "saved model artifact" in out

    def test_predict_with_model(self, kernel_file, model_file, capsys):
        code = cli_main(
            ["predict", str(kernel_file), "--model", str(model_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted Pareto set for 'saxpy'" in out
        assert "mem-L heuristic" in out

    def test_predict_batch_with_stats(self, kernel_file, model_file, capsys):
        code = cli_main(
            [
                "predict-batch",
                str(kernel_file),
                str(kernel_file),
                "--model",
                str(model_file),
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("predicted Pareto set") == 2
        assert "feature_cache.hits: 1" in out
