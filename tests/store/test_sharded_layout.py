"""Sharded registry fan-out: resolution across generations, migration."""

import json
from dataclasses import dataclass

from repro.store import ArtifactStore
from repro.store.layout import SHARDED_MARKER_FILENAME, shard_for


@dataclass(frozen=True)
class Key:
    name: str

    @property
    def slug(self) -> str:
        return self.name

    def as_meta(self) -> dict:
        return {"name": self.name}


def _write(path, value, meta):
    path.write_text(json.dumps({"value": value, "meta": meta}))
    return path


def _read(path):
    return json.loads(path.read_text())["value"]


def make_store(root, **kwargs):
    return ArtifactStore(root, write=_write, read=_read, **kwargs)


def test_shard_is_stable_and_two_hex_chars():
    assert shard_for("titan-x__default") == shard_for("titan-x__default")
    for slug in ("a", "b", "titan-x__default__123"):
        bucket = shard_for(slug)
        assert len(bucket) == 2
        assert set(bucket) <= set("0123456789abcdef")


class TestResolution:
    def test_flat_store_stays_flat(self, tmp_path):
        store = make_store(tmp_path)
        assert not store.sharded
        path = store.put(Key("alpha"), 1)
        assert path == tmp_path / "alpha.json"
        assert store.path_for_slug("alpha") == path

    def test_marker_routes_new_writes_to_shards(self, tmp_path):
        store = make_store(tmp_path)
        (tmp_path / SHARDED_MARKER_FILENAME).touch()
        path = store.put(Key("alpha"), 1)
        assert path == tmp_path / shard_for("alpha") / "alpha.json"
        assert store.get(Key("alpha")) == 1

    def test_flat_file_wins_over_shard(self, tmp_path):
        """Mid-migration, the legacy flat artifact stays authoritative."""
        store = make_store(tmp_path)
        store.put(Key("alpha"), 1)
        (tmp_path / SHARDED_MARKER_FILENAME).touch()
        assert store.path_for_slug("alpha") == tmp_path / "alpha.json"

    def test_sharded_file_read_without_marker(self, tmp_path):
        """A migrated store stays readable even if the marker is lost."""
        store = make_store(tmp_path)
        store.put(Key("alpha"), 1)
        store.migrate_to_sharded()
        (tmp_path / SHARDED_MARKER_FILENAME).unlink()
        fresh = make_store(tmp_path)
        assert fresh.get(Key("alpha")) == 1

    def test_entries_cover_both_generations(self, tmp_path):
        store = make_store(tmp_path)
        store.put(Key("flat-one"), 1)
        (tmp_path / SHARDED_MARKER_FILENAME).touch()
        store.put(Key("sharded-one"), 2)
        assert store.entries() == ["flat-one", "sharded-one"]


class TestMigration:
    def test_migrate_moves_artifacts_and_siblings(self, tmp_path):
        store = make_store(tmp_path, suffix=".jsonl")
        store.put(Key("trace-a"), 1)
        # Name-prefixed siblings (columnar sidecar, partial debris) are
        # one unit of state with the artifact.
        (tmp_path / "trace-a.jsonl.npz").write_bytes(b"sidecar")
        (tmp_path / "trace-a.jsonl.npz.partial").write_bytes(b"debris")
        assert store.migrate_to_sharded() == 1
        bucket = tmp_path / shard_for("trace-a")
        assert (bucket / "trace-a.jsonl").exists()
        assert (bucket / "trace-a.jsonl.npz").read_bytes() == b"sidecar"
        assert (bucket / "trace-a.jsonl.npz.partial").exists()
        assert not (tmp_path / "trace-a.jsonl").exists()
        assert store.sharded

    def test_migration_is_idempotent(self, tmp_path):
        store = make_store(tmp_path)
        store.put(Key("alpha"), 1)
        store.put(Key("beta"), 2)
        assert store.migrate_to_sharded() == 2
        assert store.migrate_to_sharded() == 0
        assert store.entries() == ["alpha", "beta"]

    def test_values_survive_migration(self, tmp_path):
        store = make_store(tmp_path)
        for i, name in enumerate(("alpha", "beta", "gamma")):
            store.put(Key(name), i)
        store.migrate_to_sharded()
        fresh = make_store(tmp_path)
        assert [fresh.get(Key(n)) for n in ("alpha", "beta", "gamma")] == [0, 1, 2]
