"""The generic keyed artifact store: tiers, eviction, stats."""

import json
from dataclasses import dataclass

import pytest

from repro.store import ArtifactStore, StoreKey, StoreMiss


@dataclass(frozen=True)
class Key:
    name: str

    @property
    def slug(self) -> str:
        return self.name

    def as_meta(self) -> dict:
        return {"name": self.name}


def _write(path, value, meta):
    path.write_text(json.dumps({"value": value, "meta": meta}))
    return path


def _read(path):
    return json.loads(path.read_text())["value"]


def make_store(root, **kwargs):
    return ArtifactStore(root, write=_write, read=_read, **kwargs)


class TestTiers:
    def test_get_without_builder_misses(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(StoreMiss):
            store.get(Key("a"))

    def test_put_then_get_hits_memory(self, tmp_path):
        store = make_store(tmp_path)
        path = store.put(Key("a"), [1, 2])
        assert path.exists()
        assert store.get(Key("a")) == [1, 2]
        assert store.stats.memory_hits == 1
        assert store.stats.puts == 1

    def test_fresh_store_loads_from_disk(self, tmp_path):
        make_store(tmp_path).put(Key("a"), {"x": 1})
        fresh = make_store(tmp_path)
        assert fresh.get(Key("a")) == {"x": 1}
        assert fresh.stats.disk_loads == 1

    def test_builder_builds_once_and_persists(self, tmp_path):
        calls = []

        def build(key):
            calls.append(key)
            return key.slug.upper()

        store = make_store(tmp_path, builder=build)
        assert store.get(Key("a")) == "A"
        assert store.get(Key("a")) == "A"
        assert len(calls) == 1
        assert store.stats.builds == 1
        assert store.path_for(Key("a")).exists()

    def test_meta_written_next_to_payload(self, tmp_path):
        store = make_store(tmp_path)
        path = store.put(Key("a"), 7)
        assert json.loads(path.read_text())["meta"] == {"name": "a"}

    def test_contains_and_entries(self, tmp_path):
        store = make_store(tmp_path)
        assert Key("a") not in store
        store.put(Key("a"), 1)
        store.put(Key("b"), 2)
        assert Key("a") in store
        assert store.entries() == ["a", "b"]

    def test_key_protocol(self):
        assert isinstance(Key("a"), StoreKey)


class TestEviction:
    def test_lru_eviction_keeps_disk(self, tmp_path):
        store = make_store(tmp_path, memory_capacity=2)
        for name in ("a", "b", "c"):
            store.put(Key(name), name)
        assert len(store) == 2
        assert store.stats.memory_evictions == 1
        # "a" was evicted from memory but survives on disk.
        assert store.get(Key("a")) == "a"
        assert store.stats.disk_loads == 1

    def test_get_refreshes_recency(self, tmp_path):
        store = make_store(tmp_path, memory_capacity=2)
        store.put(Key("a"), "a")
        store.put(Key("b"), "b")
        store.get(Key("a"))  # a is now most recent
        store.put(Key("c"), "c")  # evicts b, not a
        assert store.get(Key("a")) == "a"
        assert store.stats.disk_loads == 0

    def test_evict_memory_keeps_disk(self, tmp_path):
        store = make_store(tmp_path)
        store.put(Key("a"), 1)
        store.evict_memory()
        assert len(store) == 0
        assert store.get(Key("a")) == 1
        assert store.stats.disk_loads == 1

    def test_bad_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_store(tmp_path, memory_capacity=0)
