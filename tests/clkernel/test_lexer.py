"""Unit tests for the OpenCL-subset lexer."""

import pytest

from repro.clkernel.errors import CLLexError
from repro.clkernel.lexer import Lexer, TokKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokKind.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokKind.EOF

    def test_whitespace_only_yields_eof(self):
        toks = tokenize("  \n\t  \r\n ")
        assert len(toks) == 1
        assert toks[0].kind is TokKind.EOF

    def test_identifier(self):
        toks = tokenize("my_var")
        assert toks[0].kind is TokKind.IDENT
        assert toks[0].text == "my_var"

    def test_identifier_with_leading_underscore(self):
        toks = tokenize("_tmp0")
        assert toks[0].kind is TokKind.IDENT

    def test_keyword_recognized(self):
        toks = tokenize("float")
        assert toks[0].kind is TokKind.KEYWORD

    def test_kernel_qualifier_is_keyword(self):
        toks = tokenize("__kernel")
        assert toks[0].kind is TokKind.KEYWORD

    def test_keyword_prefix_is_identifier(self):
        # 'floaty' must not be split as 'float' + 'y'.
        toks = tokenize("floaty")
        assert toks[0].kind is TokKind.IDENT
        assert toks[0].text == "floaty"

    def test_every_token_stream_ends_with_eof(self):
        assert kinds("a + b")[-1] is TokKind.EOF


class TestNumericLiterals:
    def test_int_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokKind.INT_LIT
        assert toks[0].text == "42"

    def test_hex_literal(self):
        toks = tokenize("0xff")
        assert toks[0].kind is TokKind.INT_LIT
        assert toks[0].text == "0xff"

    def test_hex_literal_uppercase(self):
        toks = tokenize("0XDEADBEEF")
        assert toks[0].kind is TokKind.INT_LIT

    def test_unsigned_suffix(self):
        toks = tokenize("7u")
        assert toks[0].kind is TokKind.INT_LIT
        assert toks[0].text == "7u"

    def test_hex_with_unsigned_suffix(self):
        toks = tokenize("0x80000000u")
        assert toks[0].kind is TokKind.INT_LIT

    def test_float_literal(self):
        toks = tokenize("3.14")
        assert toks[0].kind is TokKind.FLOAT_LIT

    def test_float_with_f_suffix(self):
        toks = tokenize("1.5f")
        assert toks[0].kind is TokKind.FLOAT_LIT
        assert toks[0].text == "1.5f"

    def test_int_with_f_suffix_is_float(self):
        toks = tokenize("2f")
        assert toks[0].kind is TokKind.FLOAT_LIT

    def test_scientific_notation(self):
        toks = tokenize("1.0e30")
        assert toks[0].kind is TokKind.FLOAT_LIT
        assert toks[0].text == "1.0e30"

    def test_scientific_negative_exponent(self):
        toks = tokenize("2e-4")
        assert toks[0].kind is TokKind.FLOAT_LIT

    def test_leading_dot_float(self):
        toks = tokenize(".5f")
        assert toks[0].kind is TokKind.FLOAT_LIT

    def test_malformed_hex_raises(self):
        with pytest.raises(CLLexError):
            tokenize("0x")

    def test_member_access_not_float(self):
        # 'v.x' is three tokens, not a malformed float.
        assert texts("v.x") == ["v", ".", "x"]


class TestPunctuation:
    def test_maximal_munch_shift_left(self):
        assert texts("a<<b") == ["a", "<<", "b"]

    def test_maximal_munch_shl_assign(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]

    def test_le_vs_lt(self):
        assert texts("a<=b<c") == ["a", "<=", "b", "<", "c"]

    def test_increment(self):
        assert texts("i++") == ["i", "++"]

    def test_arrow(self):
        assert texts("p->x") == ["p", "->", "x"]

    def test_logical_and(self):
        assert texts("a&&b") == ["a", "&&", "b"]

    def test_bitand_vs_logand(self):
        assert texts("a&b") == ["a", "&", "b"]

    def test_unknown_character_raises(self):
        with pytest.raises(CLLexError):
            tokenize("a @ b")

    def test_all_brackets(self):
        assert texts("()[]{}") == ["(", ")", "[", "]", "{", "}"]


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert texts("a /* x + y */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert texts("a /* line1\nline2\n*/ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(CLLexError):
            tokenize("a /* never closed")

    def test_division_not_comment(self):
        assert texts("a / b") == ["a", "/", "b"]


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\nc")
        lines = [t.line for t in toks if t.kind is TokKind.IDENT]
        assert lines == [1, 2, 3]

    def test_column_tracking(self):
        toks = tokenize("ab cd")
        assert toks[0].col == 1
        assert toks[1].col == 4

    def test_columns_reset_after_newline(self):
        toks = tokenize("ab\ncd")
        assert toks[1].line == 2
        assert toks[1].col == 1


class TestRealKernel:
    def test_full_kernel_tokenizes(self):
        source = """
        __kernel void f(__global float* x, const int n) {
            int gid = get_global_id(0);
            if (gid < n) { x[gid] = x[gid] * 2.0f; }
        }
        """
        toks = Lexer(source).tokenize()
        assert toks[-1].kind is TokKind.EOF
        assert sum(1 for t in toks if t.kind is TokKind.KEYWORD) >= 6

    def test_token_helpers(self):
        toks = tokenize("for (")
        assert toks[0].is_keyword("for")
        assert not toks[0].is_punct("for")
        assert toks[1].is_punct("(")
