"""Unit tests for the OpenCL-subset parser."""

import pytest

from repro.clkernel.ast_nodes import (
    AddressSpace,
    Assignment,
    BarrierStmt,
    BinaryOp,
    Call,
    Cast,
    DeclStmt,
    DoWhileStmt,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    Identifier,
    IfStmt,
    Index,
    IntLiteral,
    Member,
    ReturnStmt,
    Ternary,
    UnaryOp,
    WhileStmt,
)
from repro.clkernel.errors import CLParseError
from repro.clkernel.parser import parse, parse_kernel


def parse_stmt(body: str):
    """Parse a single statement inside a wrapper kernel."""
    unit = parse(f"__kernel void f() {{ {body} }}")
    return unit.functions[0].body.statements[0]


def parse_expr(expr: str):
    stmt = parse_stmt(f"{expr};")
    assert isinstance(stmt, ExprStmt)
    return stmt.expr


class TestTopLevel:
    def test_kernel_flag(self):
        unit = parse("__kernel void f() { }")
        assert unit.functions[0].is_kernel

    def test_plain_function_not_kernel(self):
        unit = parse("float helper(float x) { return x; }")
        assert not unit.functions[0].is_kernel

    def test_multiple_functions(self):
        unit = parse(
            "float g(float x) { return x; } __kernel void f() { }"
        )
        assert [f.name for f in unit.functions] == ["g", "f"]
        assert len(unit.kernels()) == 1

    def test_function_lookup(self):
        unit = parse("__kernel void f() { }")
        assert unit.function("f").name == "f"
        with pytest.raises(KeyError):
            unit.function("missing")

    def test_parse_kernel_selects_by_name(self):
        src = "__kernel void a() { } __kernel void b() { }"
        assert parse_kernel(src, "b").name == "b"

    def test_parse_kernel_ambiguous_raises(self):
        src = "__kernel void a() { } __kernel void b() { }"
        with pytest.raises(CLParseError):
            parse_kernel(src)

    def test_parse_kernel_no_kernel_raises(self):
        with pytest.raises(CLParseError):
            parse_kernel("void f() { }")


class TestParameters:
    def test_global_pointer_param(self):
        unit = parse("__kernel void f(__global float* x) { }")
        p = unit.functions[0].params[0]
        assert p.param_type.is_pointer
        assert p.param_type.address_space is AddressSpace.GLOBAL

    def test_local_pointer_param(self):
        unit = parse("__kernel void f(__local float* scratch) { }")
        p = unit.functions[0].params[0]
        assert p.param_type.address_space is AddressSpace.LOCAL

    def test_const_qualifier(self):
        unit = parse("__kernel void f(__global const float* x) { }")
        assert unit.functions[0].params[0].param_type.is_const

    def test_scalar_param(self):
        unit = parse("__kernel void f(const int n) { }")
        p = unit.functions[0].params[0]
        assert not p.param_type.is_pointer
        assert p.param_type.is_int

    def test_multiple_params(self):
        unit = parse("__kernel void f(__global float* a, __global float* b, const int n) { }")
        assert len(unit.functions[0].params) == 3

    def test_unqualified_pointer_defaults_to_global(self):
        unit = parse("__kernel void f(float* x) { }")
        assert unit.functions[0].params[0].param_type.address_space is AddressSpace.GLOBAL


class TestStatements:
    def test_decl_with_init(self):
        stmt = parse_stmt("int x = 5;")
        assert isinstance(stmt, DeclStmt)
        assert stmt.name == "x"
        assert isinstance(stmt.init, IntLiteral)

    def test_decl_without_init(self):
        stmt = parse_stmt("float y;")
        assert isinstance(stmt, DeclStmt)
        assert stmt.init is None

    def test_if_else(self):
        stmt = parse_stmt("if (1) { } else { }")
        assert isinstance(stmt, IfStmt)
        assert stmt.otherwise is not None

    def test_if_without_else(self):
        stmt = parse_stmt("if (1) { }")
        assert isinstance(stmt, IfStmt)
        assert stmt.otherwise is None

    def test_for_loop_parts(self):
        stmt = parse_stmt("for (int i = 0; i < 10; i++) { }")
        assert isinstance(stmt, ForStmt)
        assert isinstance(stmt.init, DeclStmt)
        assert isinstance(stmt.cond, BinaryOp)
        assert isinstance(stmt.step, UnaryOp)

    def test_for_loop_empty_parts(self):
        stmt = parse_stmt("for (;;) { break; }")
        assert isinstance(stmt, ForStmt)
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while(self):
        stmt = parse_stmt("while (1) { continue; }")
        assert isinstance(stmt, WhileStmt)

    def test_do_while(self):
        stmt = parse_stmt("do { } while (0);")
        assert isinstance(stmt, DoWhileStmt)

    def test_return_value(self):
        unit = parse("float f() { return 1.0f; }")
        ret = unit.functions[0].body.statements[0]
        assert isinstance(ret, ReturnStmt)
        assert isinstance(ret.value, FloatLiteral)

    def test_barrier(self):
        stmt = parse_stmt("barrier(CLK_LOCAL_MEM_FENCE);")
        assert isinstance(stmt, BarrierStmt)
        assert "CLK_LOCAL_MEM_FENCE" in stmt.fence

    def test_empty_statement(self):
        stmt = parse_stmt(";")
        assert isinstance(stmt, ExprStmt)
        assert stmt.expr is None

    def test_missing_semicolon_raises(self):
        with pytest.raises(CLParseError):
            parse("__kernel void f() { int x = 1 }")

    def test_unterminated_block_raises(self):
        with pytest.raises(CLParseError):
            parse("__kernel void f() { int x = 1;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.rhs, BinaryOp) and expr.rhs.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert isinstance(expr.rhs, BinaryOp) and expr.rhs.op == "+"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.lhs, BinaryOp) and expr.lhs.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-"
        assert isinstance(expr.lhs, BinaryOp) and expr.lhs.op == "-"
        assert isinstance(expr.rhs, IntLiteral) and expr.rhs.value == 3

    def test_assignment(self):
        expr = parse_expr("x = 1")
        assert isinstance(expr, Assignment) and expr.op == "="

    def test_compound_assignment(self):
        expr = parse_expr("x += 2")
        assert isinstance(expr, Assignment) and expr.op == "+="

    def test_assignment_right_associative(self):
        expr = parse_expr("x = y = 1")
        assert isinstance(expr, Assignment)
        assert isinstance(expr.value, Assignment)

    def test_ternary(self):
        expr = parse_expr("1 ? 2 : 3")
        assert isinstance(expr, Ternary)

    def test_call_with_args(self):
        expr = parse_expr("mad(a, b, c)")
        assert isinstance(expr, Call)
        assert expr.callee == "mad"
        assert len(expr.args) == 3

    def test_call_no_args(self):
        expr = parse_expr("get_work_dim()")
        assert isinstance(expr, Call) and expr.args == []

    def test_index(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, Index)
        assert isinstance(expr.index, BinaryOp)

    def test_nested_index(self):
        expr = parse_expr("a[b[i]]")
        assert isinstance(expr, Index)
        assert isinstance(expr.index, Index)

    def test_member_access(self):
        expr = parse_expr("v.x")
        assert isinstance(expr, Member) and expr.member == "x"

    def test_cast(self):
        expr = parse_expr("(float)(x)")
        assert isinstance(expr, Cast)
        assert expr.target_type.name == "float"

    def test_unary_minus(self):
        expr = parse_expr("-x")
        assert isinstance(expr, UnaryOp) and expr.op == "-"

    def test_postfix_increment(self):
        expr = parse_expr("i++")
        assert isinstance(expr, UnaryOp) and expr.postfix

    def test_prefix_increment(self):
        expr = parse_expr("++i")
        assert isinstance(expr, UnaryOp) and not expr.postfix

    def test_vector_constructor(self):
        expr = parse_expr("float4(1.0f, 2.0f, 3.0f, 4.0f)")
        assert isinstance(expr, Call) and expr.callee == "float4"

    def test_logical_chain(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"

    def test_unsigned_hex_expression(self):
        expr = parse_expr("(y << 7) & 0x9d2c5680u")
        assert expr.op == "&"

    def test_identifier_expression(self):
        expr = parse_expr("abc")
        assert isinstance(expr, Identifier)

    def test_garbage_raises(self):
        with pytest.raises(CLParseError):
            parse_expr("+")


class TestSuiteSources:
    """Every shipped kernel source must parse."""

    def test_all_suite_kernels_parse(self):
        from repro.suite import test_benchmarks

        for spec in test_benchmarks():
            unit = parse(spec.source)
            assert unit.kernels(), spec.name

    def test_all_micro_benchmarks_parse(self):
        from repro.synthetic import generate_micro_benchmarks

        for spec in generate_micro_benchmarks():
            unit = parse(spec.source)
            assert unit.kernels(), spec.name
