"""Unit tests for AST → counted-IR lowering (the feature pass substrate)."""

import pytest

from repro.clkernel.errors import CLLoweringError
from repro.clkernel.lowering import lower_source


def counts(source, default_tc=16, **kwargs):
    ir = lower_source(source, **kwargs)
    return ir.weighted_counts(default_trip_count=default_tc)


def wrap(body, params="__global float* x, __global int* p, const int n"):
    return f"__kernel void f({params}) {{ {body} }}"


class TestArithmeticClassification:
    def test_int_add(self):
        c = counts(wrap("int a = n + 1;"))
        assert c["int_add"] == 1

    def test_int_sub_counts_as_add(self):
        c = counts(wrap("int a = n - 1;"))
        assert c["int_add"] == 1

    def test_int_mul(self):
        c = counts(wrap("int a = n * 3;"))
        assert c["int_mul"] == 1

    def test_int_div_and_mod(self):
        c = counts(wrap("int a = n / 3; int b = n % 3;"))
        assert c["int_div"] == 2

    def test_bitwise_ops(self):
        # &, |, ^, <<, >> — five distinct bitwise/shift operations.
        c = counts(wrap("int a = (n & 1) | (n ^ 2); int b = n << 3; int d = n >> 1;"))
        assert c["int_bw"] == 5

    def test_float_add(self):
        c = counts(wrap("float a = 1.0f + 2.0f;"))
        assert c["float_add"] == 1

    def test_float_mul(self):
        c = counts(wrap("float a = 2.0f * 3.0f;"))
        assert c["float_mul"] == 1

    def test_float_div(self):
        c = counts(wrap("float a = 1.0f / 3.0f;"))
        assert c["float_div"] == 1

    def test_mixed_int_float_promotes(self):
        c = counts(wrap("float a = n + 1.5f;"))
        assert c["float_add"] == 1
        assert c["int_add"] == 0

    def test_unary_negation_float(self):
        c = counts(wrap("float a = -1.5f;"))
        assert c["float_add"] == 1

    def test_bitwise_not(self):
        c = counts(wrap("int a = ~n;"))
        assert c["int_bw"] == 1

    def test_compound_assignment_counts_op(self):
        c = counts(wrap("int a = 0; a += 5;"))
        assert c["int_add"] == 1

    def test_comparison_counts_in_operand_class(self):
        ci = counts(wrap("int a = n < 3;"))
        cf = counts(wrap("int a = 1.0f < 3.0f;"))
        assert ci["int_add"] == 1
        assert cf["float_add"] == 1


class TestMemoryClassification:
    def test_global_load(self):
        c = counts(wrap("float a = x[0];"))
        assert c["gl_access"] == 1

    def test_global_store(self):
        c = counts(wrap("x[0] = 1.0f;"))
        assert c["gl_access"] == 1

    def test_read_modify_write_counts_two(self):
        c = counts(wrap("x[0] += 1.0f;"))
        assert c["gl_access"] == 2

    def test_local_access(self):
        src = "__kernel void f(__local float* s) { s[0] = 1.0f; float a = s[1]; }"
        c = counts(src)
        assert c["loc_access"] == 2
        assert c["gl_access"] == 0

    def test_private_array_not_counted(self):
        # Scalar private variables are registers, not memory features.
        c = counts(wrap("float a = 1.0f; float b = a;"))
        assert c["gl_access"] == 0 and c["loc_access"] == 0

    def test_uses_local_flag(self):
        src = "__kernel void f(__local float* s) { s[0] = 1.0f; }"
        ir = lower_source(src)
        assert ir.uses_local_memory

    def test_constant_pointer_counts_global(self):
        src = "__kernel void f(__constant float* t, __global float* o) { o[0] = t[0]; }"
        c = counts(src)
        assert c["gl_access"] == 2


class TestBuiltins:
    def test_sqrt_is_special(self):
        c = counts(wrap("float a = sqrt(2.0f);"))
        assert c["sf"] == 1

    def test_trig_are_special(self):
        c = counts(wrap("float a = sin(1.0f) + cos(1.0f) + tan(1.0f);"))
        assert c["sf"] == 3

    def test_native_variants_are_special(self):
        c = counts(wrap("float a = native_exp(1.0f);"))
        assert c["sf"] == 1

    def test_mad_expands_to_mul_add(self):
        c = counts(wrap("float a = mad(1.0f, 2.0f, 3.0f);"))
        assert c["float_mul"] == 1 and c["float_add"] == 1

    def test_fmin_counts_float(self):
        c = counts(wrap("float a = fmin(1.0f, 2.0f);"))
        assert c["float_add"] == 1

    def test_workitem_functions_free(self):
        c = counts(wrap("int gid = get_global_id(0);"))
        assert sum(c[k] for k in ("int_add", "int_mul", "int_div", "int_bw")) == 0

    def test_barrier_call_is_sync(self):
        ir = lower_source(wrap("barrier(CLK_LOCAL_MEM_FENCE);"))
        assert ir.has_barrier

    def test_unknown_function_raises(self):
        with pytest.raises(CLLoweringError):
            lower_source(wrap("float a = frobnicate(1.0f);"))


class TestLoops:
    def test_constant_trip_count_scales_body(self):
        c = counts(wrap("float a = 0.0f; for (int i = 0; i < 10; i++) { a = a + 1.0f; }"))
        assert c["float_add"] == 10

    def test_le_bound_inclusive(self):
        c = counts(wrap("float a = 0.0f; for (int i = 0; i <= 10; i++) { a = a + 1.0f; }"))
        assert c["float_add"] == 11

    def test_strided_loop(self):
        c = counts(wrap("float a = 0.0f; for (int i = 0; i < 10; i += 3) { a = a + 1.0f; }"))
        assert c["float_add"] == 4  # i = 0, 3, 6, 9

    def test_descending_loop(self):
        c = counts(wrap("float a = 0.0f; for (int i = 9; i >= 0; i--) { a = a + 1.0f; }"))
        assert c["float_add"] == 10

    def test_nested_loops_multiply(self):
        body = (
            "float a = 0.0f;"
            "for (int i = 0; i < 4; i++) { for (int j = 0; j < 8; j++) { a = a + 1.0f; } }"
        )
        c = counts(wrap(body))
        assert c["float_add"] == 32

    def test_unknown_bound_uses_default(self):
        c = counts(wrap("float a = 0.0f; for (int i = 0; i < n; i++) { a = a + 1.0f; }"), default_tc=7)
        assert c["float_add"] == 7

    def test_constant_propagated_bound(self):
        body = "int m = 4 * 2; float a = 0.0f; for (int i = 0; i < m; i++) { a = a + 1.0f; }"
        c = counts(wrap(body))
        assert c["float_add"] == 8

    def test_while_uses_default(self):
        c = counts(wrap("float a = 0.0f; while (a < 10.0f) { a = a + 1.0f; }"), default_tc=5)
        assert c["float_add"] == 5 * 2  # comparison + add, both float, x5

    def test_zero_trip_loop(self):
        c = counts(wrap("float a = 0.0f; for (int i = 5; i < 5; i++) { a = a + 1.0f; }"))
        assert c["float_add"] == 0

    def test_loop_depth(self):
        ir = lower_source(
            wrap("for (int i = 0; i < 2; i++) { for (int j = 0; j < 2; j++) { x[0] = 1.0f; } }")
        )
        assert ir.root.max_loop_depth() == 2


class TestBranches:
    def test_if_body_weighted_by_probability(self):
        c = counts(wrap("if (n < 3) { float a = 1.0f + 2.0f; }"))
        assert c["float_add"] == pytest.approx(0.5)

    def test_else_gets_complement(self):
        src = wrap("if (n < 3) { float a = 1.0f + 2.0f; } else { int b = n + 1; }")
        c = counts(src)
        assert c["float_add"] == pytest.approx(0.5)
        # condition (1 int cmp) + else branch (0.5 int add)
        assert c["int_add"] == pytest.approx(1.5)

    def test_custom_branch_probability(self):
        ir = lower_source(
            wrap("if (n < 3) { float a = 1.0f + 2.0f; }"), branch_probability=0.25
        )
        c = ir.weighted_counts()
        assert c["float_add"] == pytest.approx(0.25)

    def test_ternary_weighted(self):
        c = counts(wrap("float a = (n < 3) ? (1.0f + 2.0f) : 0.0f;"))
        assert c["float_add"] == pytest.approx(0.5)

    def test_branch_aux_op_emitted(self):
        c = counts(wrap("if (n < 3) { }"))
        assert c["branch"] >= 1


class TestInlining:
    def test_helper_function_inlined(self):
        src = """
        float square(float v) { return v * v; }
        __kernel void f(__global float* x) { x[0] = square(x[1]); }
        """
        c = counts(src)
        assert c["float_mul"] == 1

    def test_helper_inlined_inside_loop(self):
        src = """
        float square(float v) { return v * v; }
        __kernel void f(__global float* x) {
            float a = 0.0f;
            for (int i = 0; i < 4; i++) { a = a + square(a); }
        }
        """
        c = counts(src)
        assert c["float_mul"] == 4

    def test_recursion_rejected(self):
        src = """
        float rec(float v) { return rec(v); }
        __kernel void f(__global float* x) { x[0] = rec(1.0f); }
        """
        with pytest.raises(CLLoweringError):
            lower_source(src)

    def test_arity_mismatch_rejected(self):
        src = """
        float square(float v) { return v * v; }
        __kernel void f(__global float* x) { x[0] = square(1.0f, 2.0f); }
        """
        with pytest.raises(CLLoweringError):
            lower_source(src)


class TestVectorTypes:
    def test_vector_add_scales_by_lanes(self):
        c = counts(wrap("float4 a; float4 b; a = a + b;", params="__global float4* v"))
        assert c["float_add"] == 4

    def test_member_access_scalar(self):
        c = counts(wrap("float4 a; float s = a.x + 1.0f;", params="__global float4* v"))
        assert c["float_add"] == 1


class TestKernelIRProperties:
    def test_num_params(self):
        ir = lower_source(wrap("x[0] = 1.0f;"))
        assert ir.num_params == 3

    def test_pretty_renders(self):
        ir = lower_source(wrap("for (int i = 0; i < 4; i++) { x[i] = 1.0f; }"))
        text = ir.pretty()
        assert "loop x4" in text
        assert "gl_access" in text

    def test_feature_counts_excludes_aux(self):
        ir = lower_source(wrap("if (n < 3) { x[0] = 1.0f; }"))
        assert set(ir.feature_counts()) == {
            "int_add", "int_mul", "int_div", "int_bw",
            "float_add", "float_mul", "float_div", "sf",
            "gl_access", "loc_access",
        }

    def test_total_instructions_positive(self):
        ir = lower_source(wrap("x[0] = x[1] + 1.0f;"))
        assert ir.total_instructions() > 0
