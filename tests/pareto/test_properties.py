"""Property-based tests (hypothesis) for the multi-objective machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pareto.algorithms import (
    pareto_points,
    pareto_set_brute,
    pareto_set_simple,
    pareto_set_sort,
)
from repro.pareto.dominance import dominates
from repro.pareto.hypervolume import coverage_difference, hypervolume

objective = st.tuples(
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)
point_sets = st.lists(objective, min_size=0, max_size=24)


@given(a=objective, b=objective)
def test_dominance_is_asymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@given(a=objective)
def test_dominance_is_irreflexive(a):
    assert not dominates(a, a)


@given(a=objective, b=objective, c=objective)
def test_dominance_is_transitive(a, b, c):
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


@given(points=point_sets)
@settings(max_examples=200)
def test_all_three_algorithms_agree(points):
    expected = pareto_set_brute(points)
    assert pareto_set_simple(points) == expected
    assert pareto_set_sort(points) == expected


@given(points=point_sets)
def test_front_members_are_mutually_incomparable(points):
    front = [points[i] for i in pareto_set_sort(points)]
    for i, a in enumerate(front):
        for b in front[i + 1 :]:
            assert not dominates(a, b)
            assert not dominates(b, a)


@given(points=st.lists(objective, min_size=1, max_size=24))
def test_every_point_dominated_by_or_on_front(points):
    front = {points[i] for i in pareto_set_sort(points)}
    for p in points:
        assert p in front or any(dominates(f, p) for f in front)


@given(points=point_sets, extra=objective)
def test_hypervolume_monotone_under_addition(points, extra):
    assert hypervolume(points + [extra]) >= hypervolume(points) - 1e-12


@given(points=point_sets)
def test_hypervolume_non_negative_and_bounded(points):
    hv = hypervolume(points)
    assert 0.0 <= hv <= 2.0 * 2.0 + 1e-9


@given(points=point_sets)
def test_hypervolume_depends_only_on_front(points):
    front = pareto_points(points)
    assert abs(hypervolume(points) - hypervolume(front)) < 1e-9


@given(truth=point_sets, pred=point_sets)
def test_coverage_difference_non_negative(truth, pred):
    assert coverage_difference(truth, pred) >= -1e-12


@given(points=point_sets)
def test_coverage_of_self_is_zero(points):
    assert abs(coverage_difference(points, points)) < 1e-12


@given(truth=point_sets, pred=point_sets, extra=objective)
def test_coverage_shrinks_as_prediction_grows(truth, pred, extra):
    assert (
        coverage_difference(truth, pred + [extra])
        <= coverage_difference(truth, pred) + 1e-12
    )
