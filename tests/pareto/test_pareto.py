"""Tests for dominance, Pareto algorithms, hypervolume and extrema."""

import pytest

from repro.pareto.algorithms import (
    pareto_points,
    pareto_set_brute,
    pareto_set_simple,
    pareto_set_sort,
)
from repro.pareto.dominance import (
    dominates,
    incomparable,
    is_pareto_optimal,
    weakly_dominates,
)
from repro.pareto.extrema import extrema_distance, extreme_points
from repro.pareto.front import ConfigFront, ConfigPoint
from repro.pareto.hypervolume import (
    PAPER_REFERENCE_POINT,
    coverage_difference,
    hypervolume,
    relative_coverage,
)

# Objectives: (speedup, energy) — maximize speedup, minimize energy.


class TestDominance:
    def test_strictly_better_both(self):
        assert dominates((1.0, 0.5), (0.5, 1.0))

    def test_better_speedup_equal_energy(self):
        assert dominates((1.0, 1.0), (0.5, 1.0))

    def test_equal_speedup_better_energy(self):
        assert dominates((1.0, 0.5), (1.0, 1.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_tradeoff_is_incomparable(self):
        assert incomparable((1.0, 1.0), (0.5, 0.5))

    def test_antisymmetry(self):
        a, b = (1.0, 0.5), (0.5, 1.0)
        assert dominates(a, b) and not dominates(b, a)

    def test_weak_dominance_includes_equal(self):
        assert weakly_dominates((1.0, 1.0), (1.0, 1.0))

    def test_is_pareto_optimal(self):
        pts = [(1.0, 1.0), (2.0, 0.5)]
        assert is_pareto_optimal((2.0, 0.5), pts)
        assert not is_pareto_optimal((1.0, 1.0), pts)


FIXTURES = [
    [],
    [(1.0, 1.0)],
    [(1.0, 1.0), (2.0, 0.5)],
    [(1.0, 1.0), (2.0, 0.5), (0.5, 2.0)],
    [(1.0, 1.0), (1.0, 1.0)],  # duplicates on the front
    [(0.2, 1.8), (0.4, 1.4), (0.6, 1.1), (0.8, 0.9), (1.0, 1.0), (1.2, 1.3)],
    [(1.0, 0.5), (1.0, 0.7), (0.9, 0.5)],  # shared extremes
]


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("points", FIXTURES)
    def test_simple_matches_brute(self, points):
        assert pareto_set_simple(points) == pareto_set_brute(points)

    @pytest.mark.parametrize("points", FIXTURES)
    def test_sort_matches_brute(self, points):
        assert pareto_set_sort(points) == pareto_set_brute(points)

    def test_known_front(self):
        pts = [(1.0, 1.0), (2.0, 0.5), (0.5, 2.0), (1.5, 0.8)]
        # (2.0, 0.5) dominates every other point (faster and cheaper).
        assert pareto_set_brute(pts) == [1]

    def test_staircase_front(self):
        # Ascending speedup with ascending energy = a true trade-off chain;
        # (1.5, 2.5) is dominated by (2.0, 2.0).
        pts = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (1.5, 2.5)]
        assert pareto_set_brute(pts) == [0, 1, 2]

    def test_pareto_points_sorted_unique(self):
        pts = [(3.0, 3.0), (1.0, 1.0), (2.0, 2.0), (2.0, 2.0)]
        front = pareto_points(pts)
        assert front == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]


class TestHypervolume:
    def test_single_point_rectangle(self):
        # Point (1, 1) vs reference (0, 2): area = 1 * (2-1) = 1.
        assert hypervolume([(1.0, 1.0)]) == pytest.approx(1.0)

    def test_two_point_staircase(self):
        # (1, 1) adds 1x1; (0.5, 0.5) adds 0.5x0.5 above it.
        hv = hypervolume([(1.0, 1.0), (0.5, 0.5)])
        assert hv == pytest.approx(1.0 + 0.25)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([(1.0, 1.0)])
        assert hypervolume([(1.0, 1.0), (0.5, 1.5)]) == pytest.approx(base)

    def test_out_of_region_point_contributes_zero(self):
        assert hypervolume([(1.0, 2.5)]) == 0.0
        assert hypervolume([(-0.5, 1.0)]) == 0.0

    def test_empty_set(self):
        assert hypervolume([]) == 0.0

    def test_custom_reference(self):
        hv = hypervolume([(2.0, 1.0)], reference=(0.0, 3.0))
        assert hv == pytest.approx(4.0)

    def test_monotone_in_added_points(self):
        pts = [(1.0, 1.0)]
        bigger = pts + [(1.2, 0.9)]
        assert hypervolume(bigger) >= hypervolume(pts)


class TestCoverageDifference:
    def test_identical_sets_zero(self):
        pts = [(1.0, 1.0), (0.5, 0.8)]
        assert coverage_difference(pts, pts) == pytest.approx(0.0)

    def test_prediction_superset_zero(self):
        truth = [(1.0, 1.0)]
        pred = [(1.0, 1.0), (1.2, 0.9)]
        assert coverage_difference(truth, pred) == pytest.approx(0.0)

    def test_missing_extreme_costs_area(self):
        truth = [(1.0, 1.0), (2.0, 1.5)]
        pred = [(1.0, 1.0)]
        d = coverage_difference(truth, pred)
        assert d == pytest.approx((2.0 - 1.0) * (2.0 - 1.5))

    def test_non_negative(self):
        truth = [(1.0, 0.8), (1.2, 1.1)]
        pred = [(0.9, 1.0), (1.1, 0.9)]
        assert coverage_difference(truth, pred) >= 0.0

    def test_relative_coverage_bounds(self):
        truth = [(1.0, 1.0)]
        assert relative_coverage(truth, truth) == pytest.approx(1.0)
        assert relative_coverage(truth, []) == pytest.approx(0.0)

    def test_paper_reference_point(self):
        assert PAPER_REFERENCE_POINT == (0.0, 2.0)


class TestExtrema:
    def test_extraction(self):
        pts = [(1.0, 1.0), (2.0, 1.5), (0.5, 0.4)]
        ext = extreme_points(pts)
        assert ext.max_speedup == (2.0, 1.5)
        assert ext.min_energy == (0.5, 0.4)

    def test_tie_broken_by_other_objective(self):
        pts = [(2.0, 1.5), (2.0, 1.0)]
        assert extreme_points(pts).max_speedup == (2.0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            extreme_points([])

    def test_exact_prediction_distance_zero(self):
        pts = [(1.0, 1.0), (2.0, 1.5), (0.5, 0.4)]
        d = extrema_distance(pts, pts)
        assert d.max_speedup_exact and d.min_energy_exact

    def test_distance_pairs(self):
        truth = [(2.0, 1.5), (0.5, 0.4)]
        pred = [(1.8, 1.4), (0.6, 0.5)]
        d = extrema_distance(truth, pred)
        assert d.max_speedup_delta == pytest.approx((0.2, 0.1))
        assert d.min_energy_delta == pytest.approx((0.1, 0.1))

    def test_snapping_tolerance(self):
        truth = [(1.0, 1.0)]
        pred = [(1.0 + 1e-15, 1.0)]
        assert extrema_distance(truth, pred).max_speedup_exact


class TestConfigFront:
    def make_front(self):
        front = ConfigFront()
        front.add(ConfigPoint(1001.0, 3505.0, 1.0, 1.0))
        front.add(ConfigPoint(800.0, 3505.0, 0.8, 0.85))
        front.add(ConfigPoint(1202.0, 3505.0, 1.2, 1.1))
        front.add(ConfigPoint(513.0, 810.0, 0.5, 1.4))  # dominated
        return front

    def test_front_excludes_dominated(self):
        front = self.make_front().pareto_front()
        configs = [p.config for p in front]
        assert (513.0, 810.0) not in configs
        assert len(front) == 3

    def test_front_sorted_by_speedup(self):
        front = self.make_front().pareto_front()
        speeds = [p.speedup for p in front]
        assert speeds == sorted(speeds)

    def test_dominant_over_default(self):
        front = self.make_front()
        default = ConfigPoint(1001.0, 3505.0, 1.0, 1.0)
        better = ConfigPoint(1100.0, 3505.0, 1.1, 0.95)
        front.add(better)
        winners = front.dominant_over_default(default)
        assert better in winners

    def test_len(self):
        assert len(self.make_front()) == 4
