"""CLI device/backend threading: --device, --backend, --trace, --record-trace."""

import json

import pytest

from repro.cli import main

SAXPY = """
__kernel void saxpy(__global float* x, __global float* y, float a) {
    int i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"""


@pytest.fixture()
def kernel_file(tmp_path):
    path = tmp_path / "saxpy.cl"
    path.write_text(SAXPY)
    return path


def test_train_p100_then_predict_end_to_end(tmp_path, kernel_file, capsys):
    artifact = tmp_path / "p100.json"
    assert main(["train", "--quick", "--device", "tesla-p100",
                 "--save", str(artifact)]) == 0
    meta = json.loads(artifact.read_text())["meta"]
    assert meta["device"] == "NVIDIA Tesla P100"

    assert main(["predict", str(kernel_file), "--model", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "saxpy" in out
    # Every predicted point sits on the P100's single memory clock.
    assert "715" in out


def test_characterize_device_flag(capsys):
    assert main(["characterize", "MT", "--quick", "--device", "tesla-p100"]) == 0
    out = capsys.readouterr().out
    assert "NVIDIA Tesla P100" in out
    assert "mem-M" in out


def test_record_then_replay_characterize(tmp_path, capsys):
    trace = tmp_path / "mt.json"
    assert main(["characterize", "MT", "--quick",
                 "--record-trace", str(trace)]) == 0
    recorded = capsys.readouterr().out
    assert trace.exists()

    assert main(["characterize", "MT", "--quick",
                 "--backend", "replay", "--trace", str(trace)]) == 0
    replayed = capsys.readouterr().out
    # The replayed sweep prints the exact same series.
    strip = lambda text: [l for l in text.splitlines() if "recorded" not in l]  # noqa: E731
    assert strip(recorded) == strip(replayed)


def test_replay_requires_trace(capsys):
    assert main(["characterize", "MT", "--quick", "--backend", "replay"]) == 2
    assert "--trace" in capsys.readouterr().err


def test_unknown_device_reports_known_aliases(capsys):
    assert main(["characterize", "MT", "--quick", "--device", "gtx-9999"]) == 2
    err = capsys.readouterr().err
    assert "unknown device" in err
    assert "tesla-p100" in err


def test_nvml_backend_characterize(capsys):
    assert main(["characterize", "MT", "--quick", "--backend", "nvml"]) == 0
    assert "MT" in capsys.readouterr().out


def test_model_with_backend_flags_rejected(tmp_path, kernel_file, capsys):
    artifact = tmp_path / "m.json"
    assert main(["train", "--quick", "--save", str(artifact)]) == 0
    capsys.readouterr()
    assert main(["predict", str(kernel_file), "--model", str(artifact),
                 "--backend", "nvml"]) == 2
    assert "cannot be combined with --model" in capsys.readouterr().err
    assert main(["predict-batch", str(kernel_file), "--model", str(artifact),
                 "--trace", "t.json"]) == 2
    assert "cannot be combined with --model" in capsys.readouterr().err


def test_malformed_trace_missing_key_reports_cleanly(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "repro.measurement-trace", "version": 1}))
    assert main(["characterize", "MT", "--quick",
                 "--backend", "replay", "--trace", str(bad)]) == 2
    assert "missing required key 'device'" in capsys.readouterr().err
