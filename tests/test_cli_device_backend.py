"""CLI device/backend threading: --device, --backend, --trace, --record-trace."""

import json

import pytest

from repro.cli import main

SAXPY = """
__kernel void saxpy(__global float* x, __global float* y, float a) {
    int i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"""


@pytest.fixture()
def kernel_file(tmp_path):
    path = tmp_path / "saxpy.cl"
    path.write_text(SAXPY)
    return path


def test_train_p100_then_predict_end_to_end(tmp_path, kernel_file, capsys):
    artifact = tmp_path / "p100.json"
    assert main(["train", "--quick", "--device", "tesla-p100",
                 "--save", str(artifact)]) == 0
    meta = json.loads(artifact.read_text())["meta"]
    assert meta["device"] == "NVIDIA Tesla P100"

    assert main(["predict", str(kernel_file), "--model", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "saxpy" in out
    # Every predicted point sits on the P100's single memory clock.
    assert "715" in out


def test_characterize_device_flag(capsys):
    assert main(["characterize", "MT", "--quick", "--device", "tesla-p100"]) == 0
    out = capsys.readouterr().out
    assert "NVIDIA Tesla P100" in out
    assert "mem-M" in out


def test_record_then_replay_characterize(tmp_path, capsys):
    trace = tmp_path / "mt.json"
    assert main(["characterize", "MT", "--quick",
                 "--record-trace", str(trace)]) == 0
    recorded = capsys.readouterr().out
    assert trace.exists()

    assert main(["characterize", "MT", "--quick",
                 "--backend", "replay", "--trace", str(trace)]) == 0
    replayed = capsys.readouterr().out
    # The replayed sweep prints the exact same series.
    strip = lambda text: [l for l in text.splitlines() if "recorded" not in l]  # noqa: E731
    assert strip(recorded) == strip(replayed)


def test_replay_requires_trace(capsys):
    assert main(["characterize", "MT", "--quick", "--backend", "replay"]) == 2
    assert "--trace" in capsys.readouterr().err


def test_unknown_device_reports_known_aliases(capsys):
    assert main(["characterize", "MT", "--quick", "--device", "gtx-9999"]) == 2
    err = capsys.readouterr().err
    assert "unknown device" in err
    assert "tesla-p100" in err


def test_nvml_backend_characterize(capsys):
    assert main(["characterize", "MT", "--quick", "--backend", "nvml"]) == 0
    assert "MT" in capsys.readouterr().out


def test_model_with_backend_flags_rejected(tmp_path, kernel_file, capsys):
    artifact = tmp_path / "m.json"
    assert main(["train", "--quick", "--save", str(artifact)]) == 0
    capsys.readouterr()
    assert main(["predict", str(kernel_file), "--model", str(artifact),
                 "--backend", "nvml"]) == 2
    assert "cannot be combined with --model" in capsys.readouterr().err
    assert main(["predict-batch", str(kernel_file), "--model", str(artifact),
                 "--trace", "t.json"]) == 2
    assert "cannot be combined with --model" in capsys.readouterr().err


def test_malformed_trace_missing_key_reports_cleanly(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "repro.measurement-trace", "version": 1}))
    assert main(["characterize", "MT", "--quick",
                 "--backend", "replay", "--trace", str(bad)]) == 2
    assert "missing required key 'device'" in capsys.readouterr().err


def test_devices_lists_aliases_and_grids(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "aliases: gtx-titan-x, titan-x, titanx" in out
    assert "NVIDIA Tesla V100" in out
    assert "219 reported / 177 real configurations" in out


def test_campaign_then_trace_key_replay_train(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(["campaign", "--devices", "titan-x,tesla-p100", "--quick",
                 "--workers", "2", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "nvidia-gtx-titan-x/quick" in out
    assert (store / "traces").exists() and (store / "models").exists()

    artifact = tmp_path / "replayed.json"
    assert main(["train", "--quick", "--backend", "replay",
                 "--trace-key", "titan-x/quick", "--store", str(store),
                 "--save", str(artifact)]) == 0
    meta = json.loads(artifact.read_text())["meta"]
    assert meta["device"] == "NVIDIA GTX Titan X"
    assert meta["backend"] == "replay"


def test_campaign_unknown_device_is_usage_error(capsys):
    assert main(["campaign", "--devices", "gtx-9999"]) == 2
    assert "unknown device" in capsys.readouterr().err


def test_trace_key_without_store_entry_reports_cleanly(tmp_path, capsys):
    assert main(["characterize", "MT", "--quick", "--backend", "replay",
                 "--trace-key", "titan-x/default",
                 "--store", str(tmp_path / "empty")]) == 2
    assert "no recorded trace" in capsys.readouterr().err


def test_trace_and_trace_key_conflict(tmp_path, capsys):
    assert main(["characterize", "MT", "--quick", "--backend", "replay",
                 "--trace", "t.jsonl", "--trace-key", "titan-x/default"]) == 2
    assert "not both" in capsys.readouterr().err


def test_trace_key_with_mismatched_device_rejected(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(["campaign", "--devices", "titan-x", "--quick",
                 "--store", str(store)]) == 0
    capsys.readouterr()
    assert main(["characterize", "MT", "--quick", "--backend", "replay",
                 "--trace-key", "titan-x/quick", "--store", str(store),
                 "--device", "tesla-p100"]) == 2
    assert "recorded on" in capsys.readouterr().err
