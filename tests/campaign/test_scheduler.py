"""The campaign scheduler: interleaved queue, shared pool, streamed folds."""

import numpy as np
import pytest

from repro.campaign import CampaignPlan, SweepTask, interleave, run_campaign
from repro.campaign.engine import TRACES_SUBDIR
from repro.measure import DevicePool, TraceRegistry


def _task(device, i, final=True):
    return SweepTask(
        device=device,
        kernel_index=i,
        pass_index=0,
        spec=None,
        settings=(),
        final=final,
    )


class TestInterleave:
    def test_round_robin_across_legs(self):
        a = [_task("a", i) for i in range(3)]
        b = [_task("b", i) for i in range(2)]
        merged = interleave([a, b])
        assert [(t.device, t.kernel_index) for t in merged] == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2),
        ]

    def test_per_leg_order_preserved(self):
        legs = [[_task(d, i) for i in range(4)] for d in ("x", "y", "z")]
        merged = interleave(legs)
        for device in ("x", "y", "z"):
            ours = [t.kernel_index for t in merged if t.device == device]
            assert ours == [0, 1, 2, 3]

    def test_empty(self):
        assert interleave([]) == []
        assert interleave([[], []]) == []


class TestTaskEnumeration:
    def test_pass_major_kernel_order(self):
        plan = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=2)
        device = plan.device_specs()[0]
        tasks = plan.leg_tasks(device)
        specs = plan.kernel_specs()
        assert len(tasks) == plan.tasks_per_leg == 2 * len(specs)
        # Pass-major: the first len(specs) tasks are pass 0 in kernel order.
        assert [t.spec.name for t in tasks[: len(specs)]] == [s.name for s in specs]
        assert all(t.pass_index == 0 for t in tasks[: len(specs)])
        assert all(t.pass_index == 1 for t in tasks[len(specs):])

    def test_only_last_pass_is_final(self):
        plan = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=3)
        tasks = plan.leg_tasks(plan.device_specs()[0])
        finals = [t.final for t in tasks]
        n = len(plan.kernel_specs())
        assert finals == [False] * (2 * n) + [True] * n

    def test_settings_travel_with_the_task(self):
        plan = CampaignPlan(devices=("titan-x",), recipe="quick")
        device = plan.device_specs()[0]
        task = plan.leg_tasks(device)[0]
        assert list(task.settings) == plan.settings_for(device)
        assert task.device == device.name


class TestDevicePool:
    def test_inline_path_caches_backends_per_device(self):
        plan = CampaignPlan(devices=("titan-x", "tesla-p100"), recipe="quick")
        tasks = []
        for device in plan.device_specs():
            tasks.extend(t.payload() for t in plan.leg_tasks(device)[:2])
        with DevicePool(workers=1) as pool:
            results = list(pool.imap_sweeps(tasks))
            assert len(results) == 4
            assert set(pool._local_backends) == {
                "NVIDIA GTX Titan X",
                "NVIDIA Tesla P100",
            }

    def test_pool_results_match_inline_bitwise(self):
        plan = CampaignPlan(devices=("titan-x", "tesla-p100"), recipe="quick")
        tasks = []
        for device in plan.device_specs():
            tasks.extend(t.payload() for t in plan.leg_tasks(device)[:3])
        tasks = interleave([tasks[:3], tasks[3:]])
        with DevicePool(workers=1) as inline, DevicePool(workers=2) as pooled:
            serial = list(inline.imap_sweeps(tasks))
            parallel = list(pooled.imap_sweeps(tasks))
        for (m1, s1, _t1), (m2, s2, _t2) in zip(serial, parallel):
            assert m1.spec.name == m2.spec.name
            assert np.array_equal(m1.time_ms, m2.time_ms)
            assert np.array_equal(m1.energy_j, m2.energy_j)
            assert s1 is not None and s2 is not None
            assert s1.as_dict() == s2.as_dict()

    def test_apply_async_runs_work(self):
        with DevicePool(workers=1) as pool:
            assert pool.apply_async(len, [1, 2, 3]).get() == 3
        with DevicePool(workers=2) as pool:
            assert pool.apply_async(len, [1, 2, 3]).get() == 3

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            DevicePool(workers=0)


class TestInterleavedCampaign:
    def test_interleaved_bytes_match_serial_legs(self, tmp_path):
        """The tentpole bar: one shared pool, same bytes as serial legs."""
        devices = ("titan-x", "tesla-p100")
        shared = run_campaign(
            CampaignPlan(devices=devices, recipe="quick", workers=2),
            tmp_path / "shared",
        )
        serial = run_campaign(
            CampaignPlan(devices=devices, recipe="quick", workers=1),
            tmp_path / "serial",
        )
        for a, b in zip(shared.results, serial.results):
            assert a.trace_path.read_bytes() == b.trace_path.read_bytes()
            assert a.model_path.read_bytes() == b.model_path.read_bytes()

    def test_progress_callback_sees_live_state(self, tmp_path):
        plan = CampaignPlan(devices=("tesla-p100",), recipe="quick", workers=1)
        seen = []
        report = run_campaign(
            plan, tmp_path, on_progress=lambda p: seen.append(p.done)
        )
        assert seen, "callback never fired"
        assert seen == sorted(seen)  # monotone completion counts
        assert seen[-1] == plan.tasks_per_leg
        progress = report.progress
        assert progress is not None and progress.finished is not None
        assert progress.done == plan.tasks_per_leg
        assert progress.utilization() > 0.0
        leg = progress.legs[plan.device_specs()[0].name]
        assert leg.stage == "done"

    def test_model_meta_records_trace_hash(self, tmp_path):
        import hashlib

        from repro.campaign.engine import MODELS_SUBDIR
        from repro.serve.registry import ModelRegistry

        plan = CampaignPlan(devices=("tesla-p100",), recipe="quick")
        report = run_campaign(plan, tmp_path)
        registry = ModelRegistry(tmp_path / MODELS_SUBDIR)
        meta = registry.meta_for(plan.model_key(plan.device_specs()[0]))
        trace_sha = hashlib.sha256(
            report.results[0].trace_path.read_bytes()
        ).hexdigest()
        assert meta is not None
        assert meta["trace_sha256"] == trace_sha
        assert meta["recipe"] == "quick"

    def test_trace_registry_sees_interleaved_traces(self, tmp_path):
        plan = CampaignPlan(
            devices=("titan-x", "tesla-p100"), recipe="quick", workers=2
        )
        report = run_campaign(plan, tmp_path)
        registry = TraceRegistry(tmp_path / TRACES_SUBDIR)
        for result, device in zip(report.results, plan.device_specs()):
            names = registry.completed_kernels(plan.trace_key(device))
            assert names == [s.name for s in plan.kernel_specs()]
            assert result.resumed_sweeps == 0
            assert result.trained
