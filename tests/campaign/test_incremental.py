"""Append-aware streaming retraining through the campaign loop."""

import numpy as np
import pytest

from repro.campaign import CampaignPlan, run_campaign
from repro.core.config import sample_training_settings
from repro.core.dataset import iter_kernel_measurements
from repro.core.incremental import (
    load_trainer_state,
    prefix_sha256,
    train_streaming_from_trace,
)
from repro.gpusim.device import make_titan_x
from repro.measure import SimulatorBackend
from repro.measure.trace import TraceWriter
from repro.serve.registry import ModelRegistry
from repro.store.envelope import read_artifact_meta
from repro.store.layout import MODELS_SUBDIR, TRAINER_STATE_SUBDIR
from repro.synthetic import generate_micro_benchmarks


def record_trace(path, backend, specs, settings, append=False):
    writer = TraceWriter(path, device=backend.device.name, append=append)
    try:
        for _spec, _static, measurements in iter_kernel_measurements(
            backend, specs, settings
        ):
            writer.write_measurements(measurements)
    finally:
        writer.close(success=True)


@pytest.fixture
def spy_offsets(monkeypatch):
    """Record every trace-iteration pass: its start offset and record count."""
    from repro.core import incremental

    calls = []
    real = incremental.iter_trace_records

    def spying(path, start_offset=0):
        entry = {"start_offset": start_offset, "records": 0}
        calls.append(entry)
        for item in real(path, start_offset):
            entry["records"] += 1
            yield item

    monkeypatch.setattr(incremental, "iter_trace_records", spying)
    return calls


class TestTrainStreamingFromTrace:
    @pytest.fixture(scope="class")
    def workload(self, tmp_path_factory):
        backend = SimulatorBackend(make_titan_x())
        specs = generate_micro_benchmarks()[:6]
        settings = sample_training_settings(backend.device, total=6)
        trace = tmp_path_factory.mktemp("traces") / "trace.jsonl"
        record_trace(trace, backend, specs[:4], settings)
        return backend, specs, settings, trace

    def test_scratch_then_incremental_consumes_only_delta(
        self, workload, spy_offsets
    ):
        backend, specs, settings, trace = workload
        base = train_streaming_from_trace(trace, specs, settings, batch_rows=16)
        assert base.mode == "scratch"
        assert base.delta_records == 4
        # Scratch = two full passes from byte 0 (scaler, then models).
        assert [c["start_offset"] for c in spy_offsets] == [0, 0]

        record_trace(trace, backend, specs[4:], settings, append=True)
        spy_offsets.clear()
        grown = train_streaming_from_trace(
            trace, specs, settings, batch_rows=16, prior_state=base.state
        )
        assert grown.mode == "incremental"
        assert grown.delta_records == 2
        # One pass, starting exactly where the prior state stopped.
        assert len(spy_offsets) == 1
        assert spy_offsets[0]["start_offset"] == base.state.consumed_bytes
        assert spy_offsets[0]["records"] == 2
        assert grown.state.n_samples == len(specs) * len(settings)
        assert [event["mode"] for event in grown.state.lineage] == [
            "scratch",
            "incremental",
        ]

    def test_batch_size_invariance(self, workload):
        _backend, specs, settings, trace = workload
        small = train_streaming_from_trace(trace, specs, settings, batch_rows=5)
        large = train_streaming_from_trace(trace, specs, settings, batch_rows=4096)
        probe = small.models.scaler.mean_[None, :]
        assert np.allclose(
            small.models.predict_energy(probe), large.models.predict_energy(probe)
        )
        assert np.allclose(
            small.models.predict_speedup(probe), large.models.predict_speedup(probe)
        )

    def test_settings_mismatch_falls_back_to_scratch(self, workload):
        backend, specs, settings, trace = workload
        base = train_streaming_from_trace(trace, specs, settings, batch_rows=16)
        other = settings[:4]  # a different sweep grid than the state's
        other_trace = trace.parent / "other.jsonl"
        record_trace(other_trace, backend, specs, other)
        result = train_streaming_from_trace(
            other_trace, specs, other, batch_rows=16, prior_state=base.state
        )
        assert result.mode == "scratch"

    def test_rewritten_prefix_falls_back_to_scratch(self, workload):
        _backend, specs, settings, trace = workload
        base = train_streaming_from_trace(trace, specs, settings, batch_rows=16)
        mutated = trace.parent / "mutated.jsonl"
        raw = bytearray(trace.read_bytes())
        # Flip one byte inside the consumed prefix: growth check must fail.
        idx = base.state.consumed_bytes // 2
        raw[idx] = ord("9") if raw[idx] != ord("9") else ord("8")
        mutated.write_bytes(bytes(raw))
        assert prefix_sha256(mutated, base.state.consumed_bytes) != (
            base.state.prefix_sha256
        )
        result = train_streaming_from_trace(
            mutated, specs, settings, batch_rows=16, prior_state=base.state
        )
        assert result.mode == "scratch"

    def test_empty_trace_rejected(self, tmp_path, workload):
        backend, specs, settings, _trace = workload
        empty = tmp_path / "empty.jsonl"
        writer = TraceWriter(empty, device=backend.device.name)
        writer.close(success=True)
        with pytest.raises(ValueError, match="no measurement records"):
            train_streaming_from_trace(empty, specs, settings)

    def test_unknown_kernel_rejected(self, workload):
        _backend, specs, settings, trace = workload
        with pytest.raises(ValueError, match="not in the plan's specs"):
            train_streaming_from_trace(trace, specs[:1], settings)


def streaming_plan(repeats=1):
    return CampaignPlan(
        devices=("titan-x",),
        recipe="quick",
        repeats=repeats,
        trainer="streaming",
        batch_rows=128,
    )


class TestStreamingCampaign:
    def test_scratch_run_persists_state_and_meta(self, tmp_path):
        report = run_campaign(streaming_plan(), store_root=tmp_path)
        result = report.results[0]
        plan = report.plan
        key = plan.model_key(plan.device_specs()[0])

        state_path = tmp_path / TRAINER_STATE_SUBDIR / f"{key.slug}.json"
        state = load_trainer_state(state_path)
        assert state is not None
        assert state.batch_rows == 128
        assert state.n_samples == result.n_samples
        assert [event["mode"] for event in state.lineage] == ["scratch"]

        meta = read_artifact_meta(result.model_path)
        assert meta["trainer"] == "streaming"
        assert meta["trainer_mode"] == "scratch"
        assert meta["batch_rows"] == 128
        assert meta["n_samples"] == result.n_samples
        assert meta["trace_sha256"] == prefix_sha256(result.trace_path)

    def test_repeats_bump_retrains_incrementally(self, tmp_path, spy_offsets):
        run_campaign(streaming_plan(repeats=1), store_root=tmp_path)
        first_passes = len(spy_offsets)
        assert first_passes == 2  # scratch: scaler pass + model pass

        spy_offsets.clear()
        report = run_campaign(
            streaming_plan(repeats=2), store_root=tmp_path, resume=True
        )
        result = report.results[0]
        n_kernels = result.n_kernels

        # The grown trace delta-fits: one pass, offset > 0, only the
        # appended second-pass records parsed.
        assert len(spy_offsets) == 1
        assert spy_offsets[0]["start_offset"] > 0
        assert spy_offsets[0]["records"] == n_kernels

        meta = read_artifact_meta(result.model_path)
        assert meta["trainer_mode"] == "incremental"
        assert meta["delta_records"] == n_kernels
        lineage = meta["trainer_lineage"]
        assert [event["mode"] for event in lineage] == ["scratch", "incremental"]
        # Streaming consumes every pass: n_samples doubles on the bump.
        assert meta["n_samples"] == 2 * result.n_kernels * result.n_settings

    def test_streaming_bundle_loads_and_predicts_from_disk(self, tmp_path):
        report = run_campaign(streaming_plan(), store_root=tmp_path)
        plan = report.plan
        registry = ModelRegistry(tmp_path / MODELS_SUBDIR)
        models = registry.get(plan.model_key(plan.device_specs()[0]))
        assert registry.stats.disk_loads == 1
        spec = plan.kernel_specs()[0]
        pairs = models.predict_objectives(
            spec.static_features(), plan.settings_for(plan.device_specs()[0])[:3]
        )
        assert len(pairs) == 3
        assert all(np.isfinite(s) and np.isfinite(e) for s, e in pairs)

    def test_rerun_hash_skips_and_keeps_meta(self, tmp_path):
        run_campaign(streaming_plan(), store_root=tmp_path)
        report = run_campaign(streaming_plan(), store_root=tmp_path, resume=True)
        result = report.results[0]
        assert result.n_samples == result.n_kernels * result.n_settings
        meta = read_artifact_meta(result.model_path)
        assert meta["trainer"] == "streaming"
