"""CampaignProgress: counters, rates, ETA, utilization, rendering."""

import pytest

from repro.campaign import CampaignProgress


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def progress(clock):
    p = CampaignProgress(workers=4, clock=clock)
    p.add_leg("titan", total=10)
    p.add_leg("p100", total=10, skipped=4)
    return p


class TestCounters:
    def test_totals_aggregate_legs(self, progress):
        assert progress.total == 20
        assert progress.skipped == 4
        assert progress.done == 0
        assert progress.remaining == 16

    def test_task_done_advances_one_leg(self, progress):
        progress.task_done("titan", busy_seconds=0.5)
        assert progress.done == 1
        assert progress.legs["titan"].done == 1
        assert progress.legs["p100"].done == 0

    def test_leg_moves_to_training_when_swept(self, progress):
        for _ in range(10):
            progress.task_done("titan", busy_seconds=0.1)
        assert progress.legs["titan"].stage == "training"
        assert progress.legs["titan"].remaining == 0

    def test_fully_skipped_leg_starts_past_sweeping(self, clock):
        p = CampaignProgress(workers=1, clock=clock)
        leg = p.add_leg("titan", total=6, skipped=6)
        assert leg.stage == "training"

    def test_unknown_stage_rejected(self, progress):
        with pytest.raises(ValueError, match="unknown leg stage"):
            progress.leg_stage("titan", "teleporting")


class TestRates:
    def test_kernels_per_sec_and_eta(self, progress, clock):
        clock.now += 2.0
        for _ in range(8):
            progress.task_done("titan", busy_seconds=0.9)
        assert progress.kernels_per_sec() == pytest.approx(4.0)
        # 8 remaining (16 - 8 done) at 4/s -> 2s.
        assert progress.eta_seconds() == pytest.approx(2.0)

    def test_eta_zero_when_nothing_remains(self, clock):
        p = CampaignProgress(workers=1, clock=clock)
        p.add_leg("titan", total=2)
        clock.now += 1.0
        p.task_done("titan", 0.1)
        p.task_done("titan", 0.1)
        assert p.eta_seconds() == 0.0

    def test_eta_unknown_before_any_completion(self, progress, clock):
        clock.now += 1.0
        assert progress.eta_seconds() is None

    def test_utilization_is_busy_over_capacity(self, progress, clock):
        clock.now += 2.0
        progress.task_done("titan", busy_seconds=4.0)
        # 4 busy seconds / (2s elapsed x 4 workers) = 0.5
        assert progress.utilization() == pytest.approx(0.5)

    def test_utilization_clamped_to_one(self, progress, clock):
        clock.now += 0.5
        progress.task_done("titan", busy_seconds=50.0)
        assert progress.utilization() == 1.0

    def test_finish_freezes_elapsed(self, progress, clock):
        clock.now += 3.0
        progress.finish()
        clock.now += 100.0
        assert progress.elapsed == pytest.approx(3.0)


class TestRendering:
    def test_render_mentions_every_leg(self, progress, clock):
        clock.now += 1.0
        progress.task_done("titan", 0.2)
        text = progress.render()
        assert "titan: 1/10" in text
        assert "p100: 4/10" in text
        assert "kernels/s" in text
        assert "util" in text

    def test_render_shows_stage_once_swept(self, progress):
        for _ in range(6):
            progress.task_done("p100", 0.1)
        assert "p100: training" in progress.render()

    def test_resumed_label(self, progress):
        assert progress.completed_label() == "4/20 (4 resumed)"

    def test_as_dict_round_trip(self, progress, clock):
        clock.now += 1.0
        progress.task_done("titan", 0.3)
        d = progress.as_dict()
        assert d["workers"] == 4
        assert d["done"] == 1
        assert d["skipped"] == 4
        assert d["legs"]["titan"]["done"] == 1
        assert 0.0 <= d["utilization"] <= 1.0


class TestZeroElapsed:
    """Regression: a progress callback can fire with zero elapsed wall
    clock (fast first task under a coarse clock) — rates must read 0.0,
    never raise or report an infinite sweep rate."""

    def test_rates_are_zero_not_infinite(self, progress):
        progress.task_done("titan", busy_seconds=0.0)  # clock not advanced
        assert progress.elapsed == 0.0
        assert progress.kernels_per_sec() == 0.0
        assert progress.utilization() == 0.0
        assert progress.eta_seconds() is None

    def test_render_and_as_dict_survive_zero_elapsed(self, progress):
        progress.task_done("titan", busy_seconds=0.5)
        assert "0.0 kernels/s" in progress.render()
        d = progress.as_dict()
        assert d["kernels_per_sec"] == 0.0
        assert d["eta_seconds"] is None
        assert d["utilization"] == 0.0

    def test_rates_recover_once_clock_moves(self, progress, clock):
        progress.task_done("titan", busy_seconds=0.5)
        clock.now += 0.5
        assert progress.kernels_per_sec() == pytest.approx(2.0)
        assert progress.utilization() == pytest.approx(0.25)
