"""Crash-resume: a killed campaign finishes byte-identically via --resume."""

import pathlib

import pytest

from repro.campaign import CampaignPlan, run_campaign
from repro.campaign.engine import TRACES_SUBDIR
from repro.cli import main as cli_main
from repro.measure import TraceRegistry
from repro.measure import parallel as parallel_mod

DEVICES = ("titan-x", "tesla-p100")


@pytest.fixture(scope="module")
def plan():
    return CampaignPlan(devices=DEVICES, recipe="quick", workers=1)


@pytest.fixture(scope="module")
def reference(plan, tmp_path_factory):
    """An uninterrupted campaign — the byte-identity oracle."""
    store = tmp_path_factory.mktemp("oneshot")
    return run_campaign(plan, store)


def crash_store(
    root: pathlib.Path, reference, leg_index: int, keep_records: int, cut: bool = True
) -> pathlib.Path:
    """Fabricate what a killed campaign leaves behind: a ``.partial``
    stream holding the header, ``keep_records`` intact records and (with
    ``cut``) the front half of the next record — the flush the kill raced.
    """
    trace_path = reference.results[leg_index].trace_path
    lines = trace_path.read_bytes().splitlines(keepends=True)
    partial = root / TRACES_SUBDIR / (trace_path.name + ".partial")
    partial.parent.mkdir(parents=True, exist_ok=True)
    content = b"".join(lines[: 1 + keep_records])
    if cut and 1 + keep_records < len(lines):
        torn = lines[1 + keep_records]
        content += torn[: len(torn) // 2]
    partial.write_bytes(content)
    return partial


def measured_kernels(monkeypatch):
    """Record every (device, kernel) the pool actually sweeps."""
    swept = []
    original = parallel_mod._run_sweep_task

    def spying(task, cache, factory):
        swept.append((task[0], task[1].name))
        return original(task, cache, factory)

    monkeypatch.setattr(parallel_mod, "_run_sweep_task", spying)
    return swept


class TestCrashResume:
    def test_truncated_leg_finishes_byte_identical(
        self, plan, reference, tmp_path, monkeypatch
    ):
        """The satellite bar: partial trace in, identical artifacts out."""
        partial = crash_store(tmp_path, reference, leg_index=0, keep_records=7)
        swept = measured_kernels(monkeypatch)

        report = run_campaign(plan, tmp_path, resume=True)

        specs = [s.name for s in plan.kernel_specs()]
        completed = set(specs[:7])
        titan = plan.device_specs()[0].name
        titan_swept = [k for d, k in swept if d == titan]
        # Not one already-recorded kernel was re-measured...
        assert not completed & set(titan_swept)
        assert titan_swept == specs[7:]
        assert report.results[0].resumed_sweeps == 7
        # ...the torn partial is gone (published over the real path)...
        assert not partial.exists()
        # ...and every artifact is byte-identical to the one-shot run.
        for got, want in zip(report.results, reference.results):
            assert got.trace_path.read_bytes() == want.trace_path.read_bytes()
            assert got.model_path.read_bytes() == want.model_path.read_bytes()

    def test_resume_of_complete_store_reuses_everything(
        self, plan, reference, tmp_path, monkeypatch
    ):
        first = run_campaign(plan, tmp_path)
        swept = measured_kernels(monkeypatch)
        again = run_campaign(plan, tmp_path, resume=True)
        assert swept == []  # zero sweeps measured
        for before, after in zip(first.results, again.results):
            assert after.resumed_sweeps == plan.tasks_per_leg
            assert not after.trained  # model bundle proven current via hash
            assert after.trace_path.read_bytes() == before.trace_path.read_bytes()
            assert after.model_path.read_bytes() == before.model_path.read_bytes()
        assert again.progress is not None
        assert again.progress.skipped == 2 * plan.tasks_per_leg

    def test_without_resume_flag_nothing_is_reused(
        self, plan, reference, tmp_path, monkeypatch
    ):
        crash_store(tmp_path, reference, leg_index=0, keep_records=7)
        swept = measured_kernels(monkeypatch)
        report = run_campaign(plan, tmp_path, resume=False)
        assert report.results[0].resumed_sweeps == 0
        titan = plan.device_specs()[0].name
        assert len([k for d, k in swept if d == titan]) == plan.tasks_per_leg

    def test_foreign_partial_is_discarded(self, plan, reference, tmp_path):
        """A partial whose records do not match the plan's sequence
        (here: the P100's records under the Titan X key) is re-measured
        from scratch, not stitched in."""
        titan_trace = reference.results[0].trace_path
        p100_trace = reference.results[1].trace_path
        titan_lines = titan_trace.read_bytes().splitlines(keepends=True)
        p100_lines = p100_trace.read_bytes().splitlines(keepends=True)
        partial = tmp_path / TRACES_SUBDIR / (titan_trace.name + ".partial")
        partial.parent.mkdir(parents=True, exist_ok=True)
        # Titan header (device must match the key) + P100 records, whose
        # settings belong to the other device's frequency grid.
        partial.write_bytes(titan_lines[0] + b"".join(p100_lines[1:5]))

        report = run_campaign(plan, tmp_path, resume=True)
        assert report.results[0].resumed_sweeps == 0
        assert (
            report.results[0].trace_path.read_bytes() == titan_trace.read_bytes()
        )

    def test_mid_file_corruption_is_not_trusted(self, plan, reference, tmp_path):
        """Damage *between* intact records is corruption, not a crash
        tail — resume refuses the whole stream and re-measures."""
        trace_path = reference.results[0].trace_path
        lines = trace_path.read_bytes().splitlines(keepends=True)
        partial = tmp_path / TRACES_SUBDIR / (trace_path.name + ".partial")
        partial.parent.mkdir(parents=True, exist_ok=True)
        partial.write_bytes(
            lines[0] + lines[1] + b'{"kernel": "torn...\n' + lines[3]
        )
        report = run_campaign(plan, tmp_path, resume=True)
        assert report.results[0].resumed_sweeps == 0
        assert report.results[0].trace_path.read_bytes() == trace_path.read_bytes()

    def test_stale_partial_does_not_shadow_complete_published_trace(
        self, plan, reference, tmp_path, monkeypatch
    ):
        """A complete store re-run and killed at startup leaves a
        header-only .partial next to the published trace; --resume must
        still reuse the published records, not re-measure the leg."""
        complete = run_campaign(plan, tmp_path)
        trace_path = complete.results[0].trace_path
        header = trace_path.read_bytes().splitlines(keepends=True)[0]
        stale = trace_path.with_name(trace_path.name + ".partial")
        stale.write_bytes(header)
        swept = measured_kernels(monkeypatch)
        report = run_campaign(plan, tmp_path, resume=True)
        titan = plan.device_specs()[0].name
        assert [k for d, k in swept if d == titan] == []
        assert report.results[0].resumed_sweeps == plan.tasks_per_leg
        assert not report.results[0].trained
        assert trace_path.read_bytes() == complete.results[0].trace_path.read_bytes()
        assert not stale.exists()  # superseded debris is cleaned up

    def test_partial_beats_incomplete_published_trace(
        self, plan, reference, tmp_path, monkeypatch
    ):
        """When neither source is complete, the one covering more of the
        expected sequence wins: an incomplete *published* file validates
        to zero (it can only be reused whole), so a 9-record partial
        carries the resume."""
        partial = crash_store(tmp_path, reference, leg_index=0, keep_records=9)
        trace_path = reference.results[0].trace_path
        lines = trace_path.read_bytes().splitlines(keepends=True)
        published = partial.with_suffix("")  # strip ".partial"
        published.write_bytes(b"".join(lines[:-1]))  # one record short
        swept = measured_kernels(monkeypatch)
        report = run_campaign(plan, tmp_path, resume=True)
        assert report.results[0].resumed_sweeps == 9
        titan = plan.device_specs()[0].name
        specs = [s.name for s in plan.kernel_specs()]
        assert [k for d, k in swept if d == titan] == specs[9:]
        assert (
            report.results[0].trace_path.read_bytes() == trace_path.read_bytes()
        )

    def test_completed_kernels_introspection(self, plan, reference, tmp_path):
        crash_store(tmp_path, reference, leg_index=0, keep_records=4)
        registry = TraceRegistry(tmp_path / TRACES_SUBDIR)
        key = plan.trace_key(plan.device_specs()[0])
        names = registry.completed_kernels(key)
        assert names == [s.name for s in plan.kernel_specs()][:4]
        # The other leg recorded nothing.
        other = plan.trace_key(plan.device_specs()[1])
        assert registry.completed_kernels(other) == []


class TestRepeatsResume:
    def test_crash_mid_second_pass(self, tmp_path, monkeypatch):
        plan = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=2)
        reference = run_campaign(plan, tmp_path / "oneshot")
        n_kernels = len(plan.kernel_specs())
        # Crash after the full first pass plus 3 records of the second.
        crashed = tmp_path / "crashed"
        crash_store(
            crashed,
            reference,
            leg_index=0,
            keep_records=n_kernels + 3,
            cut=False,
        )
        swept = measured_kernels(monkeypatch)
        report = run_campaign(plan, crashed, resume=True)
        assert report.results[0].resumed_sweeps == n_kernels + 3
        assert len(swept) == plan.tasks_per_leg - (n_kernels + 3)
        assert (
            report.results[0].trace_path.read_bytes()
            == reference.results[0].trace_path.read_bytes()
        )
        assert (
            report.results[0].model_path.read_bytes()
            == reference.results[0].model_path.read_bytes()
        )


    def test_published_trace_with_surplus_records_not_reused(
        self, tmp_path, monkeypatch
    ):
        """A repeats=2 store resumed under a repeats=1 plan must re-measure:
        the published 2n-record trace is NOT byte-identical to a one-shot
        repeats=1 run, even though its prefix matches perfectly."""
        two_pass = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=2)
        store = tmp_path / "store"
        run_campaign(two_pass, store)
        one_pass = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=1)
        swept = measured_kernels(monkeypatch)
        report = run_campaign(one_pass, store, resume=True)
        assert report.results[0].resumed_sweeps == 0
        assert len(swept) == one_pass.tasks_per_leg
        oneshot = run_campaign(one_pass, tmp_path / "oneshot")
        assert (
            report.results[0].trace_path.read_bytes()
            == oneshot.results[0].trace_path.read_bytes()
        )
        assert (
            report.results[0].model_path.read_bytes()
            == oneshot.results[0].model_path.read_bytes()
        )

    def test_partial_with_surplus_records_is_truncated_back(
        self, tmp_path, monkeypatch
    ):
        """A too-long *partial* stream is healable: resume truncates the
        surplus records away and publishes exactly the expected sequence."""
        two_pass = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=2)
        reference2 = run_campaign(two_pass, tmp_path / "two")
        one_pass = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=1)
        oneshot = run_campaign(one_pass, tmp_path / "one")
        # Fabricate a partial holding the full 2-pass stream under a
        # 1-pass plan's key (same trace key either way).
        crashed = tmp_path / "crashed"
        n = one_pass.tasks_per_leg
        crash_store(
            crashed, reference2, leg_index=0, keep_records=2 * n, cut=False
        )
        swept = measured_kernels(monkeypatch)
        report = run_campaign(one_pass, crashed, resume=True)
        assert swept == []  # the n-record prefix covered everything
        assert report.results[0].resumed_sweeps == n
        assert (
            report.results[0].trace_path.read_bytes()
            == oneshot.results[0].trace_path.read_bytes()
        )


class TestResumeCLI:
    def test_cli_resume_smoke(self, plan, reference, tmp_path, capsys):
        crash_store(tmp_path, reference, leg_index=0, keep_records=5)
        code = cli_main(
            [
                "campaign",
                "--devices",
                ",".join(DEVICES),
                "--quick",
                "--resume",
                "--no-progress",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        registry = TraceRegistry(tmp_path / TRACES_SUBDIR)
        key = plan.trace_key(plan.device_specs()[0])
        assert registry.resolve(key).read_bytes() == (
            reference.results[0].trace_path.read_bytes()
        )
