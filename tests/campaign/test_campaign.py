"""The campaign engine: plan → parallel sweeps → registered artifacts."""

import numpy as np
import pytest

from repro.campaign import (
    MODELS_SUBDIR,
    TRACES_SUBDIR,
    CampaignPlan,
    run_campaign,
)
from repro.core.dataset import build_training_dataset
from repro.measure import SimulatorBackend, TraceRegistry
from repro.serve.registry import ModelKey, ModelRegistry


class TestPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one device"):
            CampaignPlan(devices=())
        with pytest.raises(ValueError, match="unknown recipe"):
            CampaignPlan(devices=("titan-x",), recipe="exotic")
        with pytest.raises(ValueError, match="repeats"):
            CampaignPlan(devices=("titan-x",), repeats=0)
        with pytest.raises(KeyError, match="unknown device"):
            CampaignPlan(devices=("gtx-9999",))

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError, match="same device"):
            CampaignPlan(devices=("titan-x", "titan-x"))
        # Two *aliases* of one device would race two legs onto one trace.
        with pytest.raises(ValueError, match="same device"):
            CampaignPlan(devices=("titan-x", "titanx"))

    def test_recipe_drives_suite_label(self):
        assert CampaignPlan(devices=("titan-x",)).suite_label == "default"
        assert CampaignPlan(devices=("titan-x",), recipe="quick").suite_label == "quick"
        custom = CampaignPlan(devices=("titan-x",), suite="nightly")
        assert custom.suite_label == "nightly"

    def test_keys_follow_device_and_recipe(self):
        plan = CampaignPlan(devices=("titan-x",), recipe="quick")
        device = plan.device_specs()[0]
        assert plan.trace_key(device).suite == "quick"
        assert plan.model_key(device).recipe == "quick"
        assert plan.model_key(device).device == "NVIDIA GTX Titan X"


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("store")
        plan = CampaignPlan(
            devices=("titan-x", "tesla-p100"), recipe="quick", workers=2
        )
        return run_campaign(plan, store_root=store)

    def test_both_devices_ran(self, report):
        assert [r.device for r in report.results] == [
            "NVIDIA GTX Titan X",
            "NVIDIA Tesla P100",
        ]
        for r in report.results:
            assert r.n_samples == r.n_kernels * r.n_settings
            assert r.trace_path.exists()
            assert r.model_path.exists()

    def test_traces_are_jsonl_registry_entries(self, report):
        registry = TraceRegistry(report.store_root / TRACES_SUBDIR)
        assert len(registry.entries()) == 2
        for r in report.results:
            assert r.trace_path.suffix == ".jsonl"
            replay = registry.open_backend(r.trace_key)
            assert len(replay.kernels()) == r.n_kernels

    def test_models_land_in_model_registry(self, report):
        registry = ModelRegistry(report.store_root / MODELS_SUBDIR)
        key = ModelKey(device="NVIDIA Tesla P100", recipe="quick")
        models = registry.get(key)
        assert registry.stats.disk_loads == 1  # loaded, not retrained
        assert models.n_training_samples == report.results[1].n_samples

    def test_replay_reproduces_dataset_exactly(self, report):
        """The acceptance bar: trace-key replay == the campaign's dataset."""
        plan = report.plan
        registry = TraceRegistry(report.store_root / TRACES_SUBDIR)
        for device in plan.device_specs():
            specs = plan.kernel_specs()
            settings = plan.settings_for(device)
            direct = build_training_dataset(
                SimulatorBackend(device), specs, settings
            )
            replayed = build_training_dataset(
                registry.open_backend(plan.trace_key(device)), specs, settings
            )
            assert np.array_equal(direct.x, replayed.x)
            assert np.array_equal(direct.y_speedup, replayed.y_speedup)
            assert np.array_equal(direct.y_energy, replayed.y_energy)
            assert direct.groups == replayed.groups

    def test_report_formats(self, report):
        text = report.format()
        assert "trace key" in text
        assert "NVIDIA Tesla P100" in text
        assert str(report.store_root) in text


class TestRepeats:
    def test_repeat_passes_merge_identically(self, tmp_path):
        plan = CampaignPlan(devices=("tesla-p100",), recipe="quick", repeats=2)
        report = run_campaign(plan, store_root=tmp_path)
        registry = TraceRegistry(tmp_path / TRACES_SUBDIR)
        trace = registry.get(plan.trace_key(plan.device_specs()[0]))
        settings = plan.settings_for(plan.device_specs()[0])
        # Two passes over the grid, merged: each kernel holds one copy.
        for kernel in trace.kernels.values():
            assert len(kernel.configs) == len(settings)

    def test_v100_campaign_runs(self, tmp_path):
        """The new three-domain device works through the whole stack."""
        plan = CampaignPlan(devices=("v100",), recipe="quick")
        report = run_campaign(plan, store_root=tmp_path)
        assert report.results[0].device == "NVIDIA Tesla V100"
        assert report.results[0].n_settings == 24
