"""CLI store maintenance: `repro traces`, `repro store compact`, replay LRU."""

import pytest

from repro.cli import main
from repro.measure import TraceWriter, sidecar_path
from repro.measure.trace_registry import TraceRegistry
from repro.store.layout import TRACES_SUBDIR


@pytest.fixture()
def store(tmp_path):
    root = tmp_path / "store"
    assert main([
        "campaign", "--devices", "titan-x", "--quick", "--no-progress",
        "--store", str(root),
    ]) == 0
    return root


def test_traces_compact_then_replay_train(store, tmp_path, capsys):
    # The campaign auto-compacted its published leg: v3, fresh, no
    # maintenance needed.
    assert main(["traces", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "v3" in out
    assert "fresh" in out

    # Drop the sidecar: the store falls back to plain v2 JSONL ...
    registry = TraceRegistry(store / TRACES_SUBDIR)
    (slug,) = registry.entries()
    sidecar_path(registry.store.path_for_slug(slug)).unlink()
    assert main(["traces", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "v2" in out
    assert "none" in out

    # ... and one maintenance pass rebuilds it and shards the layout.
    assert main(["store", "compact", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "compacted 1/1" in out
    assert "1 trace file(s)" in out

    assert main(["traces", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "v3" in out
    assert "fresh" in out

    # A second maintenance pass is a no-op.
    assert main(["store", "compact", "--store", str(store)]) == 0
    assert "compacted 0/1" in capsys.readouterr().out

    # Replay training off the compacted, sharded store — with the
    # satellite LRU bound threaded through the CLI.
    artifact = tmp_path / "replayed.json"
    assert main([
        "train", "--quick", "--backend", "replay",
        "--trace-key", "titan-x/quick", "--store", str(store),
        "--max-cached-kernels", "2", "--save", str(artifact),
    ]) == 0
    assert artifact.exists()


def test_traces_reports_delta_tail_until_recompacted(store, capsys):
    assert main(["store", "compact", "--store", str(store)]) == 0
    capsys.readouterr()

    registry = TraceRegistry(store / TRACES_SUBDIR)
    (slug,) = registry.entries()
    trace_path = registry.store.path_for_slug(slug)
    with TraceWriter(
        trace_path, device="NVIDIA GTX Titan X", append=True
    ) as writer:
        writer.write_kernel(
            "appended-later",
            _kernel_trace(),
        )

    assert main(["traces", "--store", str(store)]) == 0
    assert "tail" in capsys.readouterr().out

    assert main(["store", "compact", "--store", str(store)]) == 0
    assert "compacted 1/1" in capsys.readouterr().out
    assert main(["traces", "--store", str(store)]) == 0
    assert "fresh" in capsys.readouterr().out


def _kernel_trace():
    from repro.measure import KernelTrace

    return KernelTrace(
        baseline_core_mhz=1000.0,
        baseline_mem_mhz=3500.0,
        baseline_time_ms=1.0,
        baseline_power_w=100.0,
        baseline_energy_j=0.1,
        configs=[(500.0, 3500.0)],
        time_ms=[2.0],
        power_w=[60.0],
        energy_j=[0.12],
    )


def test_traces_empty_store_is_a_usage_error(tmp_path, capsys):
    assert main(["traces", "--store", str(tmp_path)]) == 2
    assert "no recorded traces" in capsys.readouterr().err


def test_maintenance_refuses_to_conjure_a_store(tmp_path, capsys):
    """A typo'd --store must error out, not leave a store skeleton behind."""
    missing = tmp_path / "typo"
    assert main(["store", "compact", "--store", str(missing)]) == 2
    assert "no campaign store" in capsys.readouterr().err
    assert not missing.exists()
    assert main(["traces", "--store", str(missing)]) == 2
    assert "no campaign store" in capsys.readouterr().err
    assert not missing.exists()
