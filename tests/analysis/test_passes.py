"""The pass manager: registry, per-(IR, pass) caching, pass results."""

import pytest

from repro.analysis import (
    AnalysisConfig,
    AnalysisError,
    Divergence,
    LoopStructure,
    MemoryMix,
    OpcodeHistogram,
    PassManager,
    get_pass,
    registered_passes,
)
from repro.clkernel.lowering import lower_source


def lower(body: str, params: str = "__global float* x"):
    return lower_source(f"__kernel void f({params}) {{ {body} }}")


class TestRegistry:
    def test_minimum_pass_set_registered(self):
        names = registered_passes()
        for required in (
            "opcode-histogram",
            "memory-mix",
            "loop-structure",
            "divergence",
            "diagnostics",
        ):
            assert required in names

    def test_get_pass_unknown_name(self):
        with pytest.raises(AnalysisError):
            get_pass("no-such-pass")


class TestCaching:
    def test_same_ir_same_pass_is_cached(self):
        ir = lower("x[0] = x[1] + 1.0f;")
        manager = PassManager(AnalysisConfig())
        first = manager.run(ir, "opcode-histogram")
        second = manager.run(ir, "opcode-histogram")
        assert first is second
        assert manager.stats.hits == 1
        assert manager.stats.misses == 1

    def test_different_irs_do_not_share_entries(self):
        ir_a = lower("x[0] = x[1] + 1.0f;")
        ir_b = lower("x[0] = x[1] * 2.0f;")
        manager = PassManager(AnalysisConfig())
        a = manager.run(ir_a, "opcode-histogram")
        b = manager.run(ir_b, "opcode-histogram")
        assert a is not b
        assert manager.stats.misses == 2

    def test_run_all_covers_every_registered_pass(self):
        ir = lower("for (int i = 0; i < 8; i++) { x[i] = 1.0f; }")
        manager = PassManager(AnalysisConfig())
        results = manager.run_all(ir)
        assert set(results) == set(registered_passes())


class TestOpcodeHistogram:
    def test_matches_weighted_counts_exactly(self):
        ir = lower(
            "for (int i = 0; i < 10; i++) { if (x[i] > 0.0f) { x[i] = x[i] / 2.0f; } }"
        )
        manager = PassManager(AnalysisConfig())
        hist = manager.run(ir, "opcode-histogram")
        assert isinstance(hist, OpcodeHistogram)
        assert hist.weighted == ir.weighted_counts(16)
        assert hist.feature_total > 0.0

    def test_respects_default_trip_count(self):
        src = "__kernel void f(__global float* x, int n) { for (int i = 0; i < n; i++) { x[i] = 1.0f; } }"
        ir = lower_source(src)
        small = PassManager(AnalysisConfig(default_trip_count=2))
        big = PassManager(AnalysisConfig(default_trip_count=64))
        assert (
            big.run(ir, "opcode-histogram").feature_total
            > small.run(ir, "opcode-histogram").feature_total
        )


class TestMemoryMix:
    def test_global_and_local_shares(self):
        src = (
            "__kernel void f(__global float* g, __local float* l) "
            "{ l[0] = g[0]; g[1] = l[0] + 1.0f; }"
        )
        ir = lower_source(src)
        mix = PassManager(AnalysisConfig()).run(ir, "memory-mix")
        assert isinstance(mix, MemoryMix)
        assert mix.global_weight > 0.0
        assert mix.local_weight > 0.0
        assert 0.0 < mix.global_share_of_accesses < 1.0
        assert mix.global_share_of_accesses + mix.local_share_of_accesses == pytest.approx(1.0)


class TestLoopStructure:
    def test_nesting_and_bound_classification(self):
        src = """
        __kernel void f(__global float* x, int n) {
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < n; j++) {
                    x[i] = x[i] + 1.0f;
                }
            }
        }
        """
        ir = lower_source(src)
        loops = PassManager(AnalysisConfig()).run(ir, "loop-structure")
        assert isinstance(loops, LoopStructure)
        assert loops.n_loops == 2
        assert loops.max_depth == 2
        assert loops.n_static_trip == 1
        assert loops.n_defaulted_trip == 1
        assert 0.0 < loops.loop_resident_share <= 1.0

    def test_loop_free_kernel(self):
        ir = lower("x[0] = x[1];")
        loops = PassManager(AnalysisConfig()).run(ir, "loop-structure")
        assert loops.n_loops == 0
        assert loops.max_depth == 0
        assert loops.loop_resident_share == 0.0


class TestDivergence:
    def test_branch_accounting(self):
        src = (
            "__kernel void f(__global float* x, int n) "
            "{ int i = get_global_id(0); if (i < n) { x[i] = 1.0f; } }"
        )
        ir = lower_source(src)
        div = PassManager(AnalysisConfig()).run(ir, "divergence")
        assert isinstance(div, Divergence)
        assert div.n_branch_regions >= 1
        assert div.branch_ops >= 1
        assert 0.0 < div.conditional_mass < 1.0
        assert div.min_branch_probability == pytest.approx(0.5)

    def test_straight_line_kernel_has_no_divergence(self):
        ir = lower("x[0] = x[1] + 1.0f;")
        div = PassManager(AnalysisConfig()).run(ir, "divergence")
        assert div.n_branch_regions == 0
        assert div.conditional_mass == 0.0


class TestAnalysisConfig:
    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            AnalysisConfig(default_trip_count=-1)
        with pytest.raises(ValueError):
            AnalysisConfig(branch_probability=1.5)
