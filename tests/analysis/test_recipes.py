"""Feature recipes: naming, widths, bit-identity, and cache keying."""

import pytest

from repro.analysis import (
    DEFAULT_RECIPE,
    RecipeError,
    is_recipe,
    registered_recipes,
    resolve_recipe,
)
from repro.features.extractor import ExtractorConfig, FeatureExtractor
from repro.features.vector import STATIC_FEATURE_NAMES
from repro.serve.cache import KernelFeatureCache, source_fingerprint

SOURCE = """
__kernel void mix(__global float* g, __local float* l, int n) {
    int i = get_global_id(0);
    for (int k = 0; k < 8; k++) {
        if (i < n) {
            l[i] = g[i] * 2.0f;
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    g[i] = l[i] + 1.0f;
}
"""


class TestResolution:
    def test_default_recipe_resolves(self):
        recipe = resolve_recipe(DEFAULT_RECIPE)
        assert recipe.is_default
        assert recipe.width == len(STATIC_FEATURE_NAMES)
        assert recipe.column_names == STATIC_FEATURE_NAMES

    def test_unknown_base_rejected(self):
        with pytest.raises(RecipeError):
            resolve_recipe("paper11")

    def test_unknown_block_rejected(self):
        with pytest.raises(RecipeError):
            resolve_recipe("paper10+frobnication")

    def test_repeated_block_rejected(self):
        with pytest.raises(RecipeError):
            resolve_recipe("paper10+loops+loops")

    def test_is_recipe(self):
        assert is_recipe("paper10")
        assert is_recipe("paper10+loops+memmix")
        assert not is_recipe("interactions")

    def test_registered_recipes_cover_bases_and_blocks(self):
        names = registered_recipes()
        assert "paper10" in names
        assert "paper10-raw" in names
        assert "paper10+loops" in names
        assert "paper10+memmix" in names
        assert len(names) >= 3

    def test_blocks_widen_the_vector(self):
        base = resolve_recipe("paper10")
        loops = resolve_recipe("paper10+loops")
        both = resolve_recipe("paper10+loops+memmix")
        assert loops.width > base.width
        assert both.width > loops.width
        # Base columns stay a prefix: downstream code may rely on order.
        assert both.column_names[: base.width] == base.column_names


class TestBitIdentity:
    def test_default_recipe_matches_legacy_vector_exactly(self):
        default = FeatureExtractor().extract(SOURCE)
        explicit = FeatureExtractor(ExtractorConfig(recipe="paper10")).extract(SOURCE)
        assert default.values == explicit.values
        assert default.names == explicit.names
        assert default.total_instructions == explicit.total_instructions
        assert default.raw_counts == explicit.raw_counts

    def test_raw_ablation_is_a_recipe_variant(self):
        via_flag = FeatureExtractor(ExtractorConfig(normalize=False)).extract(SOURCE)
        via_recipe = FeatureExtractor(
            ExtractorConfig(recipe="paper10-raw")
        ).extract(SOURCE)
        assert via_flag.values == via_recipe.values
        # Raw counts are not shares: they exceed 1 for this kernel.
        assert max(via_flag.values) > 1.0

    def test_effective_recipe_folds_normalize(self):
        cfg = ExtractorConfig(normalize=False, recipe="paper10+loops")
        assert cfg.effective_recipe() == "paper10-raw+loops"


class TestExtendedExtraction:
    def test_extended_recipe_appends_block_columns(self):
        base = FeatureExtractor().extract(SOURCE)
        wide = FeatureExtractor(
            ExtractorConfig(recipe="paper10+loops+memmix+divergence")
        ).extract(SOURCE)
        assert len(wide.values) == len(wide.names)
        assert len(wide.values) > len(base.values)
        assert wide.values[: len(base.values)] == base.values
        assert wide.names[: len(base.names)] == base.names
        # Every appended column has a fresh name.
        assert len(set(wide.names)) == len(wide.names)


class TestCacheKeys:
    """Satellite 1: recipe/config identity must enter the cache key."""

    def test_fingerprints_differ_across_recipes(self):
        assert source_fingerprint(
            SOURCE, config=ExtractorConfig(recipe="paper10")
        ) != source_fingerprint(SOURCE, config=ExtractorConfig(recipe="paper10+loops"))

    def test_fingerprints_differ_across_knobs(self):
        assert source_fingerprint(
            SOURCE, config=ExtractorConfig(default_trip_count=16)
        ) != source_fingerprint(SOURCE, config=ExtractorConfig(default_trip_count=8))

    def test_two_recipes_never_collide_in_cache(self):
        narrow = KernelFeatureCache(FeatureExtractor(ExtractorConfig()))
        wide = KernelFeatureCache(
            FeatureExtractor(ExtractorConfig(recipe="paper10+loops"))
        )
        a = narrow.get(SOURCE)
        b = wide.get(SOURCE)
        assert len(a.values) != len(b.values)
        # Same source text, different extractor config: distinct keys, so
        # neither cache could ever serve the other's entry.
        assert narrow.peek(SOURCE) is a
        assert wide.peek(SOURCE) is b

    def test_config_fingerprint_is_stable_within_a_config(self):
        cfg = ExtractorConfig(recipe="paper10+memmix")
        assert cfg.fingerprint() == ExtractorConfig(recipe="paper10+memmix").fingerprint()
