"""Diagnostics-pass edge cases: the lowering corners the lint must flag."""

from repro.analysis import AnalysisConfig, DiagnosticsReport, PassManager
from repro.clkernel.lowering import lower_source


def diagnose(source: str, **config_kwargs) -> DiagnosticsReport:
    cfg = AnalysisConfig(**config_kwargs)
    ir = lower_source(source, branch_probability=cfg.branch_probability)
    report = PassManager(cfg).run(ir, "diagnostics")
    assert isinstance(report, DiagnosticsReport)
    return report


def codes(report: DiagnosticsReport) -> list[str]:
    return [f.code for f in report.findings]


class TestUnknownTripCounts:
    def test_nested_unknown_bound_loops_flag_each_level(self):
        src = """
        __kernel void f(__global float* x, int n, int m) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < m; j++) {
                    x[i] = x[i] + 1.0f;
                }
            }
        }
        """
        report = diagnose(src)
        unknown = [f for f in report.findings if f.code == "unknown-trip-count"]
        assert len(unknown) == 2
        assert all(f.severity == "error" for f in unknown)
        # Each finding anchors to its own loop's line.
        assert len({f.line for f in unknown}) == 2
        assert report.max_severity == "error"

    def test_static_bounds_are_clean(self):
        src = """
        __kernel void f(__global float* x) {
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 8; j++) {
                    x[i] = x[i] + 1.0f;
                }
            }
        }
        """
        assert "unknown-trip-count" not in codes(diagnose(src))

    def test_while_loop_is_unknown(self):
        src = """
        __kernel void f(__global float* x) {
            while (x[0] > 0.0f) {
                x[0] = x[0] - 1.0f;
            }
        }
        """
        assert "unknown-trip-count" in codes(diagnose(src))


class TestZeroWeightRegions:
    def test_else_branch_with_probability_one_is_zero_weight(self):
        # With branch_probability=1.0 the else region is weighted
        # 1 - p = 0: its ops vanish from every feature vector.
        src = """
        __kernel void f(__global float* x, int n) {
            int i = get_global_id(0);
            if (i < n) {
                x[i] = 1.0f;
            } else {
                x[i] = 2.0f;
            }
        }
        """
        report = diagnose(src, branch_probability=1.0)
        zero = [f for f in report.findings if f.code == "zero-weight-region"]
        assert len(zero) >= 1
        assert all(f.severity == "warning" for f in zero)

    def test_zero_trip_loop_is_zero_weight(self):
        src = """
        __kernel void f(__global float* x) {
            for (int i = 0; i < 0; i++) {
                x[i] = 1.0f;
            }
            x[0] = 1.0f;
        }
        """
        assert "zero-weight-region" in codes(diagnose(src))

    def test_balanced_probability_is_not_zero_weight(self):
        src = """
        __kernel void f(__global float* x, int n) {
            int i = get_global_id(0);
            if (i < n) { x[i] = 1.0f; } else { x[i] = 2.0f; }
        }
        """
        report = diagnose(src)
        assert "zero-weight-region" not in codes(report)
        # Both arms are estimated, once per source line.
        assumed = [
            f for f in report.findings if f.code == "assumed-branch-probability"
        ]
        assert assumed
        assert all(f.severity == "info" for f in assumed)


class TestAuxOnlyKernels:
    def test_barrier_only_kernel_has_no_feature_ops(self):
        src = """
        __kernel void f(__local float* s) {
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        """
        report = diagnose(src)
        assert "no-feature-ops" in codes(report)
        assert report.max_severity == "error"

    def test_normal_kernel_has_feature_ops(self):
        src = "__kernel void f(__global float* x) { x[0] = x[1] + 1.0f; }"
        assert "no-feature-ops" not in codes(diagnose(src))


class TestReportShape:
    def test_findings_are_line_ordered_and_kernel_tagged(self):
        src = """
        __kernel void f(__global float* x, int n) {
            for (int i = 0; i < n; i++) {
                if (x[i] > 0.0f) {
                    x[i] = 0.0f;
                }
            }
        }
        """
        report = diagnose(src)
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        assert all(f.kernel == "f" for f in report.findings)
        assert report.errors
        assert report.kernel == "f"
