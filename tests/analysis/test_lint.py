"""The lint engine and `repro lint` CLI: findings, stores, exit codes."""

import pathlib

import pytest

from repro.analysis import lint_paths, lint_source, lint_store
from repro.cli import main

CLEAN = """
__kernel void scale(__global float* x) {
    for (int i = 0; i < 16; i++) {
        x[i] = x[i] * 2.0f;
    }
}
"""

UNKNOWN_LOOP = """
__kernel void spin(__global float* x) {
    while (x[0] > 0.0f) {
        x[0] = x[0] - 1.0f;
    }
}
"""

BROKEN = "__kernel void oops(__global float* x) { x[0] = ; }"


class TestLintSource:
    def test_clean_source(self):
        findings, checked = lint_source(CLEAN)
        assert checked == 1
        assert not [f for f in findings if f.severity == "error"]

    def test_unknown_trip_count_is_an_error(self):
        findings, checked = lint_source(UNKNOWN_LOOP, label="k.cl")
        assert checked == 1
        errors = [f for f in findings if f.severity == "error"]
        assert errors
        assert errors[0].finding.code == "unknown-trip-count"
        rendered = errors[0].render()
        assert rendered.startswith("k.cl:")
        assert ": error: " in rendered
        assert "[spin]" in rendered

    def test_frontend_failure_is_a_finding_not_a_crash(self):
        findings, checked = lint_source(BROKEN, label="broken.cl")
        assert checked == 0
        assert findings
        assert findings[0].finding.code == "frontend-error"
        assert findings[0].severity == "error"

    def test_kernel_name_filter(self):
        two = CLEAN + UNKNOWN_LOOP
        findings, checked = lint_source(two, kernel_name="scale")
        assert checked == 1
        assert not [f for f in findings if f.severity == "error"]


class TestLintPaths:
    def test_reports_per_file_labels_and_lines(self, tmp_path):
        good = tmp_path / "good.cl"
        bad = tmp_path / "bad.cl"
        good.write_text(CLEAN)
        bad.write_text(UNKNOWN_LOOP)
        report = lint_paths([good, bad])
        assert report.kernels_checked == 2
        assert report.has_errors
        labels = {f.label for f in report.errors}
        assert labels == {str(bad)}
        line = report.errors[0].render()
        # path:line: severity: message (code) [kernel]
        path_part, line_part, severity_part = line.split(":", 2)
        assert path_part == str(bad)
        assert int(line_part) > 0
        assert severity_part.strip().startswith("error")

    def test_missing_file_is_unresolved_not_fatal(self, tmp_path):
        report = lint_paths([tmp_path / "absent.cl"])
        assert report.kernels_checked == 0
        assert report.unresolved
        assert not report.has_errors

    def test_min_severity_filter(self, tmp_path):
        src = tmp_path / "branchy.cl"
        src.write_text(
            "__kernel void f(__global float* x, int n) "
            "{ int i = get_global_id(0); if (i < n) { x[i] = 1.0f; } }"
        )
        report = lint_paths([src])
        assert report.render_lines("info")
        assert report.render_lines("error") == []


class TestLintStore:
    def test_not_a_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_store(tmp_path / "nowhere")

    def test_lints_a_campaign_stores_corpus(self, tmp_path):
        from repro.campaign import CampaignPlan, run_campaign

        store = tmp_path / "store"
        run_campaign(
            CampaignPlan(devices=("titan-x",), recipe="quick"), store_root=store
        )
        report = lint_store(store)
        assert report.kernels_checked > 0
        assert not report.unresolved
        # The synthetic corpus is built from known-clean templates.
        assert not report.has_errors


class TestLintCLI:
    def test_clean_suite_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.cl"
        path.write_text(CLEAN)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_error_findings_exit_nonzero(self, tmp_path, capsys):
        path = tmp_path / "spin.cl"
        path.write_text(UNKNOWN_LOOP)
        code = main(["lint", str(path)])
        assert code == 1
        out = capsys.readouterr().out
        assert f"{path}:" in out
        assert "unknown-trip-count" in out

    def test_exit_reflects_errors_even_when_hidden(self, tmp_path, capsys):
        path = tmp_path / "spin.cl"
        path.write_text(UNKNOWN_LOOP)
        # --min-severity only filters the printout, never the exit code.
        assert main(["lint", "--min-severity", "error", str(path)]) == 1

    def test_no_inputs_is_a_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sources_and_store_conflict(self, tmp_path, capsys):
        path = tmp_path / "clean.cl"
        path.write_text(CLEAN)
        assert main(["lint", str(path), "--store", str(tmp_path)]) == 2

    def test_examples_kernels_are_lint_clean(self, capsys):
        examples = sorted(
            pathlib.Path(__file__).resolve().parents[2].glob("examples/kernels/*.cl")
        )
        assert examples, "examples/kernels/ should ship lintable kernels"
        assert main(["lint", *[str(p) for p in examples]]) == 0
