"""Recipes end to end: training width-agnosticism, artifact byte identity,
serve-layer validation, and the campaign plumbing."""

import pytest

from repro.core.config import sample_training_settings
from repro.core.pipeline import train_from_specs
from repro.core.predictor import ParetoPredictor
from repro.gpusim.device import make_titan_x
from repro.measure.simulator import SimulatorBackend
from repro.serve.artifacts import load_models, save_models
from repro.serve.cache import KernelFeatureCache
from repro.serve.registry import ModelKey
from repro.serve.service import PredictionService, ServiceError
from repro.synthetic import generate_micro_benchmarks

KERNEL = """
__kernel void saxpy(__global float* y, __global const float* x, float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"""


@pytest.fixture(scope="module")
def setup():
    device = make_titan_x()
    backend = SimulatorBackend(device)
    micro = generate_micro_benchmarks()[::16]  # 7 codes: keep this fast
    settings = sample_training_settings(device, total=8)
    return device, backend, micro, settings


def train(setup, **kwargs):
    device, backend, micro, settings = setup
    models, _ = train_from_specs(backend, micro, settings, **kwargs)
    return models


class TestRecipeTraining:
    def test_default_and_explicit_paper10_are_byte_identical(self, setup, tmp_path):
        import json

        default = train(setup)
        explicit = train(setup, feature_recipe="paper10")
        a = save_models(tmp_path / "a.json", default)
        b = save_models(tmp_path / "b.json", explicit)
        assert a.read_bytes() == b.read_bytes()
        # And the default-recipe state never mentions the recipe at all:
        # pre-recipe artifacts must stay loadable AND re-savable unchanged.
        assert "feature_recipe" not in default.to_state()
        payload = json.loads(a.read_text())
        assert "feature_recipe" not in json.dumps(payload)

    def test_extended_recipe_trains_and_predicts(self, setup):
        device, _, _, settings = setup
        models = train(setup, feature_recipe="paper10+loops")
        assert models.feature_recipe == "paper10+loops"
        predictor = ParetoPredictor(models, device)
        result = predictor.predict_from_source(KERNEL)
        assert result.front

    def test_recipe_survives_artifact_round_trip(self, setup, tmp_path):
        models = train(setup, feature_recipe="paper10+memmix")
        path = save_models(tmp_path / "wide.json", models)
        loaded = load_models(path)
        assert loaded.feature_recipe == "paper10+memmix"
        assert loaded.scaler.mean_.shape == models.scaler.mean_.shape

    def test_recipe_widens_design_matrix(self, setup):
        narrow = train(setup)
        wide = train(setup, feature_recipe="paper10+loops")
        assert wide.scaler.mean_.shape[0] > narrow.scaler.mean_.shape[0]


class TestServeValidation:
    def test_service_builds_recipe_matched_cache(self, setup):
        device, *_ = setup
        models = train(setup, feature_recipe="paper10+loops")
        service = PredictionService(models=models, device=device)
        assert (
            service.cache.extractor.config.effective_recipe() == "paper10+loops"
        )
        result = service.predict(KERNEL)
        assert result.front

    def test_mismatched_cache_is_rejected(self, setup):
        device, *_ = setup
        models = train(setup, feature_recipe="paper10+loops")
        with pytest.raises(ServiceError, match="recipe"):
            PredictionService(
                models=models, device=device, cache=KernelFeatureCache()
            )

    def test_from_artifact_validates_meta_recipe(self, setup, tmp_path):
        device, *_ = setup
        models = train(setup, feature_recipe="paper10+loops")
        path = save_models(
            tmp_path / "wide.json",
            models,
            meta={"device": device.name, "features": "interactions"},
        )
        with pytest.raises(ServiceError, match="recipe"):
            PredictionService.from_artifact(path)

    def test_from_artifact_accepts_matching_meta(self, setup, tmp_path):
        device, *_ = setup
        models = train(setup, feature_recipe="paper10+loops")
        path = save_models(
            tmp_path / "wide.json",
            models,
            meta={"device": device.name, "features": "paper10+loops"},
        )
        service = PredictionService.from_artifact(path)
        assert service.predict(KERNEL).front


class TestModelKeyRecipes:
    def test_legacy_spellings_mean_paper10(self):
        assert ModelKey(features="interactions").feature_recipe == "paper10"
        assert ModelKey(features="concat").feature_recipe == "paper10"
        assert ModelKey(features="concat").interactions is False

    def test_recipe_named_key(self):
        key = ModelKey(features="paper10+loops")
        assert key.feature_recipe == "paper10+loops"
        assert key.interactions is True
        assert "paper10-loops" in key.slug

    def test_unknown_features_rejected(self):
        with pytest.raises(ValueError):
            ModelKey(features="paper11+nonsense")

    def test_streaming_trainer_rejects_recipes(self):
        from repro.serve.registry import train_streaming_for_key

        with pytest.raises(ValueError, match="streaming"):
            train_streaming_for_key(ModelKey(features="paper10+loops"))


class TestCampaignPlanRecipes:
    def test_plan_carries_recipe_into_model_key(self):
        from repro.campaign import CampaignPlan

        plan = CampaignPlan(
            devices=("titan-x",), recipe="quick", features="paper10+loops"
        )
        key = plan.model_key(plan.device_specs()[0])
        assert key.features == "paper10+loops"
        assert plan.extractor_config().recipe == "paper10+loops"

    def test_default_plan_has_no_extractor_config(self):
        from repro.campaign import CampaignPlan

        plan = CampaignPlan(devices=("titan-x",), recipe="quick")
        assert plan.extractor_config() is None
        assert plan.model_key(plan.device_specs()[0]).features == "interactions"

    def test_plan_rejects_unknown_recipe(self):
        from repro.campaign import CampaignPlan

        with pytest.raises(ValueError):
            CampaignPlan(devices=("titan-x",), features="paper10+bogus")

    def test_plan_rejects_streaming_with_recipe(self):
        from repro.campaign import CampaignPlan

        with pytest.raises(ValueError, match="streaming"):
            CampaignPlan(
                devices=("titan-x",),
                trainer="streaming",
                features="paper10+loops",
            )

    def test_recipe_campaign_end_to_end(self, tmp_path):
        from repro.campaign import CampaignPlan, run_campaign
        from repro.serve.fleet import FleetService

        store = tmp_path / "store"
        report = run_campaign(
            CampaignPlan(
                devices=("titan-x",), recipe="quick", features="paper10+loops"
            ),
            store_root=store,
        )
        assert report.results[0].trained
        fleet = FleetService.from_campaign_store(store)
        result = fleet.predict(KERNEL, device="titan-x")
        assert result.front
        service = fleet.service_for("titan-x")
        assert service.models.feature_recipe == "paper10+loops"
        assert (
            service.cache.extractor.config.effective_recipe() == "paper10+loops"
        )
        # The recipe cache is fleet-shared but distinct from the default one.
        assert service.cache is not fleet.feature_cache
