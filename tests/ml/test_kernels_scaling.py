"""Tests for kernel functions and scalers."""

import numpy as np
import pytest

from repro.ml.kernels import LinearKernel, PolynomialKernel, RBFKernel, make_kernel
from repro.ml.scaling import IdentityScaler, MinMaxScaler, StandardScaler


class TestLinearKernel:
    def test_matches_dot_product(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(5, 3))
        assert np.allclose(LinearKernel()(a, b), a @ b.T)

    def test_symmetric_gram(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(6, 4))
        g = LinearKernel()(a, a)
        assert np.allclose(g, g.T)

    def test_1d_inputs_promoted(self):
        out = LinearKernel()(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(11.0)


class TestRBFKernel:
    def test_self_similarity_is_one(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(5, 3))
        g = RBFKernel(gamma=0.1)(a, a)
        assert np.allclose(np.diag(g), 1.0)

    def test_bounded_between_zero_and_one(self):
        rng = np.random.default_rng(3)
        g = RBFKernel(gamma=0.5)(rng.normal(size=(8, 4)), rng.normal(size=(9, 4)))
        assert np.all(g > 0.0) and np.all(g <= 1.0)

    def test_matches_explicit_formula(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])  # distance 5
        g = RBFKernel(gamma=0.1)(a, b)
        assert g[0, 0] == pytest.approx(np.exp(-0.1 * 25.0))

    def test_decreases_with_distance(self):
        a = np.array([[0.0]])
        near = RBFKernel(gamma=0.1)(a, np.array([[1.0]]))[0, 0]
        far = RBFKernel(gamma=0.1)(a, np.array([[5.0]]))[0, 0]
        assert near > far

    def test_gamma_must_be_positive(self):
        with pytest.raises(ValueError):
            RBFKernel(gamma=0.0)

    def test_gram_psd(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(20, 5))
        g = RBFKernel(gamma=0.1)(a, a)
        eigs = np.linalg.eigvalsh(g)
        assert eigs.min() > -1e-9


class TestPolynomialKernel:
    def test_degree_one_is_affine_dot(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        g = PolynomialKernel(degree=1, gamma=1.0, coef0=1.0)(a, b)
        assert g[0, 0] == pytest.approx(12.0)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)


class TestFactory:
    def test_make_each(self):
        assert make_kernel("linear").name == "linear"
        assert make_kernel("rbf", gamma=0.2).gamma == 0.2
        assert make_kernel("poly", degree=3).degree == 3

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_kernel("sigmoid")


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(5)
        x = rng.normal(loc=3.0, scale=2.0, size=(100, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_maps_to_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)

    def test_roundtrip(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(30, 3))
        s = StandardScaler().fit(x)
        assert np.allclose(s.inverse_transform(s.transform(x)), x)

    def test_1d_transform(self):
        x = np.arange(10.0).reshape(-1, 1)
        s = StandardScaler().fit(x)
        row = s.transform(np.array([4.5]))
        assert row.shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.empty((0, 3)))


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(50, 3)) * 10
        z = MinMaxScaler().fit_transform(x)
        assert z.min() == pytest.approx(0.0)
        assert z.max() == pytest.approx(1.0)

    def test_roundtrip(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(20, 2))
        s = MinMaxScaler().fit(x)
        assert np.allclose(s.inverse_transform(s.transform(x)), x)


class TestIdentityScaler:
    def test_noop(self):
        x = np.arange(6.0).reshape(2, 3)
        s = IdentityScaler().fit(x)
        assert np.allclose(s.transform(x), x)
        assert np.allclose(s.inverse_transform(x), x)
