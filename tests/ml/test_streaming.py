"""Streaming components: Welford scaling, partial_fit, random-Fourier SVR."""

import json

import numpy as np
import pytest

from repro.ml.linear import NormalEquations, OLSRegression, RidgeRegression
from repro.ml.poly import PolynomialRegression
from repro.ml.scaling import StandardScaler, scaler_from_state
from repro.ml.streaming import (
    RandomFourierSVR,
    WelfordScaler,
    make_streaming_energy_model,
    make_streaming_speedup_model,
)
from repro.ml import regressor_from_state
from repro.ml.kernels import RBFKernel
from repro.ml.svr import SVR


def linear_data(n=200, d=5, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = x @ w + 1.5 + noise * rng.normal(size=n)
    return x, y


def shuffled_batches(x, y, sizes, seed=1):
    """Split (x, y) into uneven mini-batches in a shuffled row order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(y))
    x, y = x[order], y[order]
    out, start = [], 0
    for size in sizes:
        out.append((x[start : start + size], y[start : start + size]))
        start += size
    assert start == len(y), "sizes must cover every row"
    return out


class TestWelfordScaler:
    def test_matches_batch_scaler_over_shuffled_minibatches(self):
        x, _ = linear_data(n=203)
        batch = StandardScaler().fit(x)
        streaming = WelfordScaler()
        for xb, _ in shuffled_batches(x, np.zeros(len(x)), [64, 64, 64, 11]):
            streaming.partial_fit(xb)
        assert np.allclose(streaming.mean_, batch.mean_, atol=1e-12)
        assert np.allclose(streaming._finalized_scale(), batch.scale_, atol=1e-12)
        assert np.allclose(streaming.transform(x), batch.transform(x), atol=1e-12)

    def test_constant_column_guard_matches_batch_scaler(self):
        # The PR 3 guard: a constant column scales by 1 (stays 0), never
        # by ~0 (which would explode on cross-device transfer).
        x, _ = linear_data(n=120)
        x[:, 2] = 7.5
        batch = StandardScaler().fit(x)
        streaming = WelfordScaler()
        for xb, _ in shuffled_batches(x, np.zeros(len(x)), [40, 40, 40]):
            streaming.partial_fit(xb)
        assert batch.scale_[2] == 1.0
        assert streaming._finalized_scale()[2] == 1.0
        assert np.allclose(streaming.transform(x), batch.transform(x), atol=1e-12)
        assert np.allclose(streaming.transform(x)[:, 2], 0.0)

    def test_single_fold_equals_fit(self):
        x, _ = linear_data(n=50)
        a = WelfordScaler().fit(x)
        b = WelfordScaler().partial_fit(x)
        assert np.array_equal(a.mean_, b.mean_)
        assert np.array_equal(a._finalized_scale(), b._finalized_scale())

    def test_inverse_transform_roundtrips(self):
        x, _ = linear_data(n=60)
        scaler = WelfordScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_state_roundtrip_bit_identical(self):
        x, _ = linear_data(n=77)
        scaler = WelfordScaler()
        for xb, _ in shuffled_batches(x, np.zeros(len(x)), [30, 30, 17]):
            scaler.partial_fit(xb)
        state = json.loads(json.dumps(scaler.to_state()))
        # The registry dispatch: kind "welford_scaler" resolves this class.
        reloaded = scaler_from_state(state)
        assert isinstance(reloaded, WelfordScaler)
        assert np.array_equal(reloaded.transform(x), scaler.transform(x))

    def test_unfitted_and_bad_inputs(self):
        with pytest.raises(RuntimeError):
            WelfordScaler().transform(np.ones((2, 3)))
        with pytest.raises(ValueError):
            WelfordScaler().partial_fit(np.ones(3))
        with pytest.raises(ValueError):
            WelfordScaler().partial_fit(np.ones((0, 3)))
        scaler = WelfordScaler().partial_fit(np.ones((4, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.partial_fit(np.ones((4, 2)))


class TestPartialFitLinear:
    def test_ridge_shuffled_minibatches_match_full_fit(self):
        x, y = linear_data(noise=0.3)
        full = RidgeRegression(alpha=1e-3).fit(x, y)
        streamed = RidgeRegression(alpha=1e-3)
        for xb, yb in shuffled_batches(x, y, [64, 64, 64, 8]):
            streamed.partial_fit(xb, yb)
        streamed.finalize()
        assert np.allclose(streamed.coef_, full.coef_, atol=1e-8)
        assert streamed.intercept_ == pytest.approx(full.intercept_, abs=1e-8)

    def test_ols_predictions_match_full_fit(self):
        # Coefficients are compared through predictions: on rank-deficient
        # designs the two lstsq routes pick different min-norm solutions.
        x, y = linear_data(noise=0.2, seed=3)
        full = OLSRegression().fit(x, y)
        streamed = OLSRegression()
        for xb, yb in shuffled_batches(x, y, [100, 100]):
            streamed.partial_fit(xb, yb)
        assert np.allclose(streamed.predict(x), full.predict(x), atol=1e-8)

    def test_predict_auto_finalizes(self):
        x, y = linear_data()
        m = RidgeRegression(alpha=1e-6).partial_fit(x, y)
        assert m.coef_ is None
        m.predict(x[:1])  # triggers the solve
        assert m.coef_ is not None

    def test_fit_resets_accumulated_state(self):
        x, y = linear_data()
        other_y = -2.0 * y
        m = RidgeRegression(alpha=1e-6)
        m.partial_fit(x, y)
        m.fit(x, other_y)  # must forget the first batch entirely
        fresh = RidgeRegression(alpha=1e-6).fit(x, other_y)
        assert np.allclose(m.coef_, fresh.coef_)

    def test_finalize_without_batches_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().finalize()

    def test_accumulator_state_roundtrip(self):
        x, y = linear_data()
        m = RidgeRegression(alpha=1e-3).partial_fit(x, y)
        acc = NormalEquations.from_state(
            json.loads(json.dumps(m.accumulator.to_state()))
        )
        coef_a, int_a = m.accumulator.solve(alpha=1e-3, fit_intercept=True)
        coef_b, int_b = acc.solve(alpha=1e-3, fit_intercept=True)
        assert np.array_equal(coef_a, coef_b)
        assert int_a == int_b


class TestPartialFitPolynomial:
    def test_shuffled_minibatches_match_full_fit(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(150, 3))
        y = 0.5 * x[:, 0] ** 2 - x[:, 1] * x[:, 2] + 2.0
        full = PolynomialRegression(degree=2, alpha=1e-6).fit(x, y)
        streamed = PolynomialRegression(degree=2, alpha=1e-6)
        for xb, yb in shuffled_batches(x, y, [50, 50, 50]):
            streamed.partial_fit(xb, yb)
        streamed.finalize()
        assert np.allclose(streamed.predict(x), full.predict(x), atol=1e-6)

    def test_dimension_bound_on_first_batch(self):
        m = PolynomialRegression(degree=2)
        m.partial_fit(np.ones((4, 3)), np.ones(4))
        with pytest.raises(ValueError):
            m.partial_fit(np.ones((4, 2)), np.ones(4))


class TestRandomFourierSVR:
    @staticmethod
    def rbf_like_data(n=240, d=4, seed=5):
        """A smooth nonlinear target an RBF kernel fits well."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.5, 1.5, size=(n, d))
        y = np.exp(-0.8 * np.sum(x**2, axis=1)) + 0.3 * x[:, 0]
        return x, y

    def test_mape_within_band_of_exact_rbf(self):
        x, y = self.rbf_like_data()
        y = y + 1.0  # keep the target away from zero for a stable MAPE
        exact = SVR(kernel=RBFKernel(gamma=0.5), C=10.0, epsilon=0.01).fit(x, y)
        rff = RandomFourierSVR(gamma=0.5, n_components=512, alpha=1e-5).fit(x, y)

        def mape(pred):
            return float(np.mean(np.abs((pred - y) / y)))

        exact_mape = mape(exact.predict(x))
        rff_mape = mape(rff.predict(x))
        # The approximation may cost at most 5 points of training-set MAPE
        # over the exact gram solve (it is usually within 1-2).
        assert rff_mape <= exact_mape + 0.05, (exact_mape, rff_mape)

    def test_partial_fit_matches_fit(self):
        x, y = self.rbf_like_data()
        full = RandomFourierSVR(seed=3).fit(x, y)
        streamed = RandomFourierSVR(seed=3)
        for xb, yb in shuffled_batches(x, y, [80, 80, 80], seed=0):
            streamed.partial_fit(xb, yb)
        streamed.finalize()
        assert np.allclose(streamed.predict(x), full.predict(x), atol=1e-8)

    def test_state_roundtrip_predicts_bit_identically(self):
        x, y = self.rbf_like_data()
        model = RandomFourierSVR(gamma=0.3, n_components=128, seed=11).fit(x, y)
        state = json.loads(json.dumps(model.to_state()))
        # W/b are not serialized — the projection must regenerate from the
        # seed so the reloaded model predicts bit-identically.
        assert "weights" not in state and "offsets" not in state
        reloaded = regressor_from_state(state)
        assert isinstance(reloaded, RandomFourierSVR)
        assert np.array_equal(reloaded.predict(x), model.predict(x))

    def test_same_seed_same_projection(self):
        x, y = self.rbf_like_data(n=50)
        a = RandomFourierSVR(seed=9).fit(x, y)
        b = RandomFourierSVR(seed=9).fit(x, y)
        c = RandomFourierSVR(seed=10).fit(x, y)
        assert np.array_equal(a.predict(x), b.predict(x))
        assert not np.array_equal(a.predict(x), c.predict(x))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomFourierSVR(gamma=0.0)
        with pytest.raises(ValueError):
            RandomFourierSVR(n_components=0)
        with pytest.raises(ValueError):
            RandomFourierSVR(alpha=-1.0)
        with pytest.raises(RuntimeError):
            RandomFourierSVR().predict(np.ones((1, 2)))

    def test_factories(self):
        assert isinstance(make_streaming_speedup_model(), RidgeRegression)
        energy = make_streaming_energy_model(seed=4)
        assert isinstance(energy, RandomFourierSVR)
        assert energy.seed == 4
        assert energy.gamma == pytest.approx(0.1)
