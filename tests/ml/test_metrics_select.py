"""Tests for metrics, box stats and model selection."""

import numpy as np
import pytest

from repro.ml.linear import OLSRegression
from repro.ml.metrics import (
    BoxStats,
    GroupedErrorReport,
    mae,
    mape,
    r2_score,
    relative_error_pct,
    rmse,
    rmse_pct,
)
from repro.ml.model_select import (
    cross_validate,
    grid_search,
    grouped_kfold_indices,
    kfold_indices,
)


class TestMetrics:
    def test_rmse_known_value(self):
        assert rmse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(np.sqrt(2.0))

    def test_mae_known_value(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_relative_error_signed(self):
        errs = relative_error_pct([2.0, 2.0], [2.2, 1.8])
        assert errs.tolist() == pytest.approx([10.0, -10.0])

    def test_rmse_pct(self):
        assert rmse_pct([2.0, 2.0], [2.2, 1.8]) == pytest.approx(10.0)

    def test_mape(self):
        assert mape([2.0, 2.0], [2.2, 1.8]) == pytest.approx(10.0)

    def test_zero_true_value_rejected(self):
        with pytest.raises(ValueError):
            relative_error_pct([0.0, 1.0], [1.0, 1.0])

    def test_r2_perfect(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_predictor_zero(self):
        y = np.arange(10.0)
        assert r2_score(y, np.full(10, y.mean())) == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])


class TestBoxStats:
    def test_five_number_summary(self):
        stats = BoxStats.from_values(np.arange(101.0))
        assert stats.minimum == 0.0
        assert stats.q25 == 25.0
        assert stats.median == 50.0
        assert stats.q75 == 75.0
        assert stats.maximum == 100.0
        assert stats.iqr == 50.0
        assert stats.n == 101

    def test_single_value(self):
        stats = BoxStats.from_values(np.array([3.0]))
        assert stats.minimum == stats.median == stats.maximum == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values(np.array([]))

    def test_row_tuple(self):
        stats = BoxStats.from_values(np.array([1.0, 2.0, 3.0]))
        assert stats.row() == (1.0, 1.5, 2.0, 2.5, 3.0)


class TestGroupedErrorReport:
    def test_panel_rmse_pools_all_groups(self):
        report = GroupedErrorReport.build(
            "H",
            {"a": np.array([10.0, -10.0]), "b": np.array([5.0, -5.0])},
        )
        assert report.rmse_pct == pytest.approx(np.sqrt((100 + 100 + 25 + 25) / 4))
        assert set(report.per_key) == {"a", "b"}


class TestKFold:
    def test_partitions_everything_once(self):
        seen = []
        for _, test_idx in kfold_indices(20, 5, seed=1):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(20))

    def test_train_test_disjoint(self):
        for train_idx, test_idx in kfold_indices(20, 4):
            assert not set(train_idx) & set(test_idx)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5))

    def test_bad_splits_rejected(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))


class TestGroupedKFold:
    def test_groups_never_split(self):
        groups = ["a"] * 5 + ["b"] * 5 + ["c"] * 5 + ["d"] * 5
        for train_idx, test_idx in grouped_kfold_indices(groups, 2):
            test_groups = {groups[i] for i in test_idx}
            train_groups = {groups[i] for i in train_idx}
            assert not test_groups & train_groups

    def test_all_samples_covered(self):
        groups = ["a", "a", "b", "b", "c", "c"]
        seen = []
        for _, test_idx in grouped_kfold_indices(groups, 3):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(6))

    def test_too_few_groups_rejected(self):
        with pytest.raises(ValueError):
            list(grouped_kfold_indices(["a", "a", "b"], 3))


class TestCrossValidate:
    def test_linear_data_scores_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 3.0
        result = cross_validate(OLSRegression, x, y, n_splits=4)
        assert result.mean_score < 1e-8

    def test_grid_search_orders_best_first(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(80, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 0.01 * rng.normal(size=80)

        class MeanModel:
            def fit(self, x, y):
                self.mean = float(np.mean(y))
                return self

            def predict(self, x):
                return np.full(x.shape[0], self.mean)

        results = grid_search({"ols": OLSRegression, "mean": MeanModel}, x, y)
        assert results[0].label == "ols"
        assert results[0].mean_score < results[1].mean_score

    def test_grouped_cv_uses_group_labels(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(40, 2))
        y = x @ np.array([1.0, 1.0])
        groups = [f"g{i // 10}" for i in range(40)]
        result = cross_validate(OLSRegression, x, y, n_splits=4, groups=groups)
        assert len(result.fold_scores) == 4
