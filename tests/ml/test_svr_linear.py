"""Tests for the SVR solver and the linear-model family."""

import numpy as np
import pytest

from repro.ml.kernels import LinearKernel, RBFKernel
from repro.ml.linear import LassoRegression, OLSRegression, RidgeRegression
from repro.ml.metrics import rmse
from repro.ml.poly import PolynomialRegression, n_polynomial_terms, polynomial_expand
from repro.ml.svr import SVR, make_energy_svr, make_speedup_svr


def linear_data(n=120, d=4, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = x @ w + 1.5 + noise * rng.normal(size=n)
    return x, y, w


class TestOLS:
    def test_recovers_exact_coefficients(self):
        x, y, w = linear_data()
        m = OLSRegression().fit(x, y)
        assert np.allclose(m.coef_, w, atol=1e-8)
        assert m.intercept_ == pytest.approx(1.5)

    def test_no_intercept(self):
        x, y, _ = linear_data()
        m = OLSRegression(fit_intercept=False).fit(x, y)
        assert m.intercept_ == 0.0

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OLSRegression().predict(np.ones((1, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OLSRegression().fit(np.ones((5, 2)), np.ones(4))

    def test_1d_prediction(self):
        x, y, _ = linear_data()
        m = OLSRegression().fit(x, y)
        single = m.predict(x[0])
        assert np.isscalar(single) or single.ndim == 0


class TestRidge:
    def test_zero_alpha_matches_ols(self):
        x, y, _ = linear_data()
        ols = OLSRegression().fit(x, y)
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage(self):
        x, y, _ = linear_data(noise=0.5)
        small = RidgeRegression(alpha=0.01).fit(x, y)
        large = RidgeRegression(alpha=1000.0).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestLasso:
    def test_sparse_recovery(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 10))
        w = np.zeros(10)
        w[[1, 4]] = [2.0, -3.0]
        y = x @ w + 0.5
        m = LassoRegression(alpha=0.05).fit(x, y)
        zero_idx = [i for i in range(10) if i not in (1, 4)]
        assert np.all(np.abs(m.coef_[zero_idx]) < 0.05)
        assert m.coef_[1] == pytest.approx(2.0, abs=0.15)
        assert m.coef_[4] == pytest.approx(-3.0, abs=0.15)

    def test_zero_alpha_matches_ols(self):
        x, y, w = linear_data(n=80, d=3)
        m = LassoRegression(alpha=0.0, max_iter=5000, tol=1e-12).fit(x, y)
        assert np.allclose(m.coef_, w, atol=1e-5)

    def test_huge_alpha_kills_all(self):
        x, y, _ = linear_data()
        m = LassoRegression(alpha=1e6).fit(x, y)
        assert np.allclose(m.coef_, 0.0)
        assert m.intercept_ == pytest.approx(np.mean(y))

    def test_converges_and_reports_iters(self):
        x, y, _ = linear_data()
        m = LassoRegression(alpha=0.01).fit(x, y)
        assert 1 <= m.n_iter_ <= m.max_iter


class TestSVRLinear:
    def test_fits_clean_linear_data_within_tube(self):
        x, y, _ = linear_data(n=150)
        m = SVR(kernel=LinearKernel(), C=1000.0, epsilon=0.1)
        m.fit(x, y)
        residuals = np.abs(m.predict(x) - y)
        assert np.percentile(residuals, 95) <= 0.12

    def test_epsilon_zero_tightens_fit(self):
        x, y, _ = linear_data(n=100)
        loose = SVR(kernel=LinearKernel(), epsilon=0.2).fit(x, y)
        tight = SVR(kernel=LinearKernel(), epsilon=0.0).fit(x, y)
        assert rmse(y, tight.predict(x)) <= rmse(y, loose.predict(x)) + 1e-9

    def test_deterministic(self):
        x, y, _ = linear_data()
        a = SVR(kernel=LinearKernel()).fit(x, y).predict(x)
        b = SVR(kernel=LinearKernel()).fit(x, y).predict(x)
        assert np.allclose(a, b)

    def test_support_vectors_subset(self):
        # Clean data fits entirely inside the tube: no support vectors.
        x, y, _ = linear_data(n=60)
        m = SVR(kernel=LinearKernel()).fit(x, y)
        assert 0 <= m.n_support_ <= 60

    def test_noisy_data_has_support_vectors(self):
        x, y, _ = linear_data(n=60, noise=0.5, seed=7)
        m = SVR(kernel=LinearKernel()).fit(x, y)
        assert m.n_support_ > 0

    def test_constant_target(self):
        x = np.random.default_rng(2).normal(size=(30, 3))
        y = np.full(30, 2.5)
        m = SVR(kernel=LinearKernel()).fit(x, y)
        assert np.allclose(m.predict(x), 2.5, atol=1e-6)

    def test_dual_objective_finite_and_nonpositive(self):
        # At beta = 0 the dual objective is 0; the optimum can only be <= 0.
        x, y, _ = linear_data(n=50)
        m = SVR(kernel=RBFKernel(gamma=0.5)).fit(x, y)
        assert m.dual_objective() <= 1e-9

    def test_dual_objective_unavailable_for_primal_path(self):
        x, y, _ = linear_data(n=30)
        m = SVR(kernel=LinearKernel()).fit(x, y)
        with pytest.raises(RuntimeError):
            m.dual_objective()

    def test_linear_coef_exposed(self):
        x, y, w = linear_data(n=100)
        m = SVR(kernel=LinearKernel(), epsilon=0.01).fit(x, y)
        assert m.coef_ is not None
        assert np.allclose(m.coef_, w, atol=0.05)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SVR(C=0.0)
        with pytest.raises(ValueError):
            SVR(epsilon=-0.1)
        with pytest.raises(ValueError):
            SVR(max_epochs=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SVR().predict(np.ones((1, 2)))


class TestSVRRBF:
    def test_fits_parabola(self):
        # Normalized-energy-like target: parabolic in one input.
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(200, 2))
        y = 1.0 + 2.0 * (x[:, 0] - 0.2) ** 2
        m = SVR(kernel=RBFKernel(gamma=1.0), C=1000.0, epsilon=0.01)
        m.fit(x, y)
        assert rmse(y, m.predict(x)) < 0.05

    def test_paper_configurations(self):
        speed = make_speedup_svr()
        energy = make_energy_svr()
        assert speed.C == 1000.0 and speed.epsilon == 0.1
        assert energy.C == 1000.0 and energy.epsilon == 0.1
        assert isinstance(energy.kernel, RBFKernel) and energy.kernel.gamma == 0.1
        assert isinstance(speed.kernel, LinearKernel)

    def test_interpolates_between_points(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        m = SVR(kernel=RBFKernel(gamma=1.0), epsilon=0.0).fit(x, y)
        mid = m.predict(np.array([[0.5]]))[0]
        assert 0.2 < mid < 0.8


class TestPolynomialRegression:
    def test_expansion_width(self):
        x = np.ones((3, 4))
        out = polynomial_expand(x, degree=2)
        assert out.shape[1] == n_polynomial_terms(4, 2) == 4 + 10

    def test_expansion_values(self):
        x = np.array([[2.0, 3.0]])
        out = polynomial_expand(x, 2)
        # x1, x2, x1^2, x1*x2, x2^2
        assert out.tolist() == [[2.0, 3.0, 4.0, 6.0, 9.0]]

    def test_fits_quadratic(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-2, 2, size=(100, 1))
        y = 3.0 * x[:, 0] ** 2 - x[:, 0] + 0.5
        m = PolynomialRegression(degree=2).fit(x, y)
        assert rmse(y, m.predict(x)) < 1e-4

    def test_feature_count_check(self):
        m = PolynomialRegression(degree=2).fit(np.ones((10, 3)), np.ones(10))
        with pytest.raises(ValueError):
            m.predict(np.ones((2, 4)))

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialRegression(degree=0)
