"""Tests for the feature-vector representation (paper §3.2)."""

import numpy as np
import pytest

from repro.features.vector import (
    CONCAT_FEATURE_NAMES,
    CORE_FREQ_INTERVAL,
    FULL_FEATURE_NAMES,
    INTERACTION_FEATURE_NAMES,
    MEM_FREQ_INTERVAL,
    STATIC_FEATURE_NAMES,
    ExecutionFeatures,
    StaticFeatures,
    build_design_matrix,
    normalize_frequency,
)


def make_static(**overrides):
    counts = dict.fromkeys(STATIC_FEATURE_NAMES, 0.0)
    counts.update(overrides)
    return StaticFeatures.from_counts(counts, kernel_name="t")


class TestStaticFeatures:
    def test_normalization_sums_to_one(self):
        f = make_static(int_add=3, float_mul=5, gl_access=2)
        assert sum(f.values) == pytest.approx(1.0)

    def test_share_values(self):
        f = make_static(int_add=1, float_add=3)
        assert f["int_add"] == pytest.approx(0.25)
        assert f["float_add"] == pytest.approx(0.75)

    def test_scale_invariance(self):
        a = make_static(int_add=1, gl_access=1)
        b = make_static(int_add=100, gl_access=100)
        assert a.values == pytest.approx(b.values)

    def test_zero_kernel_is_zero_vector(self):
        f = make_static()
        assert all(v == 0.0 for v in f.values)
        assert f.total_instructions == 0.0

    def test_total_preserved(self):
        f = make_static(int_add=3, float_mul=5)
        assert f.total_instructions == 8.0

    def test_raw_counts_preserved(self):
        f = make_static(int_add=3, float_mul=5)
        assert f.raw_counts[STATIC_FEATURE_NAMES.index("int_add")] == 3.0

    def test_memory_share(self):
        f = make_static(gl_access=2, loc_access=1, int_add=7)
        assert f.memory_share == pytest.approx(0.3)
        assert f.compute_share == pytest.approx(0.7)

    def test_unknown_key_raises(self):
        f = make_static(int_add=1)
        with pytest.raises(KeyError):
            f["bogus"]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            StaticFeatures(values=(0.0, 1.0))

    def test_as_dict_roundtrip(self):
        f = make_static(int_add=1, sf=1)
        d = f.as_dict()
        assert d["int_add"] == pytest.approx(0.5)
        assert len(d) == 10

    def test_describe_mentions_name(self):
        f = make_static(int_add=1)
        assert "t:" in f.describe()


class TestFrequencyNormalization:
    def test_interval_endpoints(self):
        lo = normalize_frequency(CORE_FREQ_INTERVAL[0], MEM_FREQ_INTERVAL[0])
        hi = normalize_frequency(CORE_FREQ_INTERVAL[1], MEM_FREQ_INTERVAL[1])
        assert lo == pytest.approx((0.0, 0.0))
        assert hi == pytest.approx((1.0, 1.0))

    def test_paper_default_config_position(self):
        fc, fm = normalize_frequency(1001.0, 3505.0)
        assert 0.8 < fc < 0.85
        assert fm == pytest.approx(1.0)

    def test_degenerate_interval_rejected(self):
        with pytest.raises(ValueError):
            normalize_frequency(500.0, 800.0, core_interval=(100.0, 100.0))


class TestDesignMatrix:
    def test_shape_with_interactions(self):
        f = make_static(int_add=1)
        m = build_design_matrix(f, [(500.0, 810.0), (1000.0, 3505.0)])
        assert m.shape == (2, len(FULL_FEATURE_NAMES))

    def test_shape_without_interactions(self):
        f = make_static(int_add=1)
        m = build_design_matrix(f, [(500.0, 810.0)], interactions=False)
        assert m.shape == (1, len(CONCAT_FEATURE_NAMES))

    def test_static_part_repeats(self):
        f = make_static(int_add=1, gl_access=1)
        m = build_design_matrix(f, [(500.0, 810.0), (1000.0, 3505.0)])
        assert np.allclose(m[0, :10], m[1, :10])

    def test_interaction_columns_are_products(self):
        f = make_static(int_add=1, gl_access=3)
        m = build_design_matrix(f, [(700.0, 3304.0)])
        base = m[0, :10]
        fc, fm = m[0, 10], m[0, 11]
        assert np.allclose(m[0, 12:22], base * fc)
        assert np.allclose(m[0, 22:32], base * fm)

    def test_names_align_with_width(self):
        assert len(FULL_FEATURE_NAMES) == 32
        assert len(INTERACTION_FEATURE_NAMES) == 20

    def test_execution_features_match_matrix(self):
        f = make_static(float_add=2, gl_access=1)
        row = ExecutionFeatures(static=f, f_core_mhz=900.0, f_mem_mhz=3505.0).as_array()
        m = build_design_matrix(f, [(900.0, 3505.0)])
        assert np.allclose(row, m[0])


class TestExtractorIntegration:
    def test_extract_features_on_source(self):
        from repro.features import extract_features

        src = """
        __kernel void k(__global float* x) {
            x[0] = sqrt(x[1]) + 1.0f;
        }
        """
        f = extract_features(src)
        assert f["sf"] > 0
        assert f["gl_access"] > 0
        assert sum(f.values) == pytest.approx(1.0)

    def test_raw_counts_ablation(self):
        from repro.features import ExtractorConfig, FeatureExtractor

        src = "__kernel void k(__global float* x) { x[0] = x[1] + 1.0f; }"
        norm = FeatureExtractor().extract(src)
        raw = FeatureExtractor(ExtractorConfig(normalize=False)).extract(src)
        assert sum(norm.values) == pytest.approx(1.0)
        assert sum(raw.values) == raw.total_instructions > 1.0

    def test_trip_count_config_changes_shares(self):
        from repro.features import ExtractorConfig, FeatureExtractor

        src = """
        __kernel void k(__global float* x, const int n) {
            float a = 0.0f;
            for (int i = 0; i < n; i++) { a = a + 1.0f; }
            x[0] = a;
        }
        """
        small = FeatureExtractor(ExtractorConfig(default_trip_count=1)).extract(src)
        large = FeatureExtractor(ExtractorConfig(default_trip_count=64)).extract(src)
        assert large["float_add"] > small["float_add"]
