"""Cross-process metric merging and the no-perturbation invariant.

Campaign sweeps run on worker processes; each task records into a private
delta registry whose snapshot rides home with the result.  These tests pin
the two load-bearing properties: pooled runs report exactly the serial
run's totals (integral counters are exact in float64, so bit-for-bit),
and observability never changes a byte of the measurement artifacts.
"""

import filecmp

from repro.campaign import CampaignPlan, run_campaign
from repro.core.config import sample_training_settings
from repro.gpusim.device import device_slug
from repro.measure import ParallelBackend, simulator_factory
from repro.obs import MetricsRegistry, load_snapshot, read_spans
from repro.obs.instruments import (
    CAMPAIGN_SWEEPS_DONE_TOTAL,
    FEATURE_CACHE_REQUESTS_TOTAL,
    SWEEP_CONFIGS_TOTAL,
    SWEEP_DURATION_SECONDS,
    SWEEPS_TOTAL,
    TRAININGS_TOTAL,
)
from repro.store.layout import (
    CAMPAIGN_METRICS_FILENAME,
    METRICS_SUBDIR,
    MODELS_SUBDIR,
    SPANS_FILENAME,
    TRACES_SUBDIR,
)
from repro.synthetic import generate_micro_benchmarks

N_SPECS = 6
N_SETTINGS = 4


def _pool_snapshot(workers: int):
    specs = generate_micro_benchmarks()[:N_SPECS]
    registry = MetricsRegistry()
    with ParallelBackend(
        simulator_factory(), workers=workers, registry=registry
    ) as backend:
        settings = sample_training_settings(backend.device, total=N_SETTINGS)
        for _ in backend.imap_measure(specs, settings):
            pass
        slug = device_slug(backend.device.name)
    return registry.snapshot(), slug


class TestWorkerDeltaMerging:
    def test_pooled_totals_equal_serial_bit_for_bit(self):
        serial, slug = _pool_snapshot(workers=1)
        pooled, _ = _pool_snapshot(workers=2)
        labels = {"device": slug, "backend": "simulator"}
        assert serial.value(SWEEPS_TOTAL, **labels) == N_SPECS
        for name in (SWEEPS_TOTAL, SWEEP_CONFIGS_TOTAL):
            assert pooled.value(name, **labels) == serial.value(name, **labels)
        assert (
            pooled.histogram(SWEEP_DURATION_SECONDS, **labels).count
            == serial.histogram(SWEEP_DURATION_SECONDS, **labels).count
        )

    def test_worker_deltas_do_not_leak_into_the_process_default(self):
        from repro.obs import get_registry

        before = get_registry().value(
            SWEEPS_TOTAL, device="nvidia-gtx-titan-x", backend="simulator"
        )
        _pool_snapshot(workers=2)
        after = get_registry().value(
            SWEEPS_TOTAL, device="nvidia-gtx-titan-x", backend="simulator"
        )
        assert after == before


class TestCampaignMetrics:
    def _run(self, tmp_path, name, workers):
        plan = CampaignPlan(devices=("titan-x",), recipe="quick", workers=workers)
        store = tmp_path / name
        return run_campaign(plan, store_root=store), store

    def test_parallel_campaign_totals_equal_serial_bit_for_bit(self, tmp_path):
        report1, store1 = self._run(tmp_path, "serial", workers=1)
        report2, store2 = self._run(tmp_path, "pooled", workers=2)
        slug = device_slug(report1.results[0].device)
        for name in (
            CAMPAIGN_SWEEPS_DONE_TOTAL,
            TRAININGS_TOTAL,
        ):
            v1 = report1.metrics.value(name, device=slug)
            v2 = report2.metrics.value(name, device=slug)
            assert v1 == v2 and v1 > 0, (name, v1, v2)
        labels = {"device": slug, "backend": "simulator"}
        for name in (SWEEPS_TOTAL, SWEEP_CONFIGS_TOTAL):
            assert report1.metrics.value(name, **labels) == report2.metrics.value(
                name, **labels
            )

    def test_observability_never_perturbs_the_artifacts(self, tmp_path):
        """Default-registry run vs caller-registry run: identical bytes."""
        _, store1 = self._run(tmp_path, "a", workers=1)
        plan = CampaignPlan(devices=("titan-x",), recipe="quick", workers=1)
        store2 = tmp_path / "b"
        run_campaign(plan, store_root=store2, registry=MetricsRegistry())
        for subdir in (TRACES_SUBDIR, MODELS_SUBDIR):
            cmp = filecmp.dircmp(store1 / subdir, store2 / subdir)
            assert not cmp.diff_files, cmp.diff_files
            assert not cmp.left_only and not cmp.right_only
            identical, mismatch, errors = filecmp.cmpfiles(
                store1 / subdir,
                store2 / subdir,
                cmp.common_files,
                shallow=False,
            )
            assert not mismatch and not errors, (mismatch, errors)

    def test_obs_files_live_beside_not_inside_the_artifacts(self, tmp_path):
        _, store = self._run(tmp_path, "layout", workers=1)
        assert (store / SPANS_FILENAME).is_file()
        assert (store / METRICS_SUBDIR / CAMPAIGN_METRICS_FILENAME).is_file()
        for subdir in (TRACES_SUBDIR, MODELS_SUBDIR):
            names = {p.name for p in (store / subdir).rglob("*")}
            assert SPANS_FILENAME not in names
            assert CAMPAIGN_METRICS_FILENAME not in names

    def test_store_snapshot_matches_the_report_and_covers_serving(self, tmp_path):
        report, store = self._run(tmp_path, "snap", workers=2)
        stored = load_snapshot(store / METRICS_SUBDIR / CAMPAIGN_METRICS_FILENAME)
        slug = device_slug(report.results[0].device)
        labels = {"device": slug, "backend": "simulator"}
        assert stored.value(SWEEPS_TOTAL, **labels) == report.metrics.value(
            SWEEPS_TOTAL, **labels
        )
        hist = stored.histogram(SWEEP_DURATION_SECONDS, **labels)
        assert hist is not None and hist.count > 0
        # The serve-cache counters are exported (at zero) even though the
        # campaign never served — `repro stats` on a fresh store must show
        # them, per the acceptance criteria.
        assert stored.label_values(FEATURE_CACHE_REQUESTS_TOTAL) == [
            ("hit",),
            ("miss",),
        ]

    def test_span_log_records_the_run_hierarchy(self, tmp_path):
        _, store = self._run(tmp_path, "spans", workers=1)
        events = read_spans(store / SPANS_FILENAME)
        started = [e["name"] for e in events if e["event"] == "start"]
        ended = {e["id"] for e in events if e["event"] == "end"}
        assert "campaign.run" in started
        assert "campaign.sweep" in started
        assert "campaign.train" in started
        # every span ended, and ended ok
        assert {e["id"] for e in events if e["event"] == "start"} == ended
        assert all(
            e["status"] == "ok" for e in events if e["event"] == "end"
        )
