"""Tests for the append-only JSONL span log."""

import json

import pytest

from repro.obs import SPAN_FORMAT, SpanLog, read_spans


def _clock_from(values):
    it = iter(values)
    return lambda: next(it)


class TestSpanLog:
    def test_span_emits_start_and_end_events(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanLog(path, clock=_clock_from([1.0, 3.5]), wall=lambda: 100.0) as log:
            with log.span("campaign.sweep", device="titan-x"):
                pass
        events = read_spans(path)
        assert [e["event"] for e in events] == ["start", "end"]
        start, end = events
        assert start["format"] == SPAN_FORMAT
        assert start["name"] == "campaign.sweep"
        assert start["labels"] == {"device": "titan-x"}
        assert start["unix_ts"] == 100.0
        assert end["id"] == start["id"]
        assert end["status"] == "ok"
        assert end["duration_seconds"] == pytest.approx(2.5)

    def test_exception_marks_span_as_error(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanLog(path) as log:
            with pytest.raises(ValueError):
                with log.span("campaign.train"):
                    raise ValueError("boom")
        end = read_spans(path)[-1]
        assert end["status"] == "error"
        assert "boom" in end["error"]

    def test_end_is_idempotent(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanLog(path) as log:
            span = log.span("x")
            span.end()
            span.end()
            with span:  # the context exit must not double-close either
                pass
        assert len(read_spans(path)) == 2

    def test_label_values_are_stringified(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanLog(path) as log:
            with log.span("x", total=36, reused=False):
                pass
        start = read_spans(path)[0]
        assert start["labels"] == {"total": "36", "reused": "False"}

    def test_spans_append_across_log_instances(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        for _ in range(2):
            with SpanLog(path) as log:
                with log.span("run"):
                    pass
        assert len(read_spans(path)) == 4

    def test_unended_span_leaves_only_a_start_event(self, tmp_path):
        # A crash between start and end must still leave forensics behind.
        path = tmp_path / "spans.jsonl"
        with SpanLog(path) as log:
            log.span("campaign.sweep", device="a")
        events = read_spans(path)
        assert [e["event"] for e in events] == ["start"]

    def test_no_file_is_created_before_the_first_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanLog(path):
            pass
        assert not path.exists()


class TestReadSpans:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_spans(tmp_path / "nope.jsonl") == []

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanLog(path) as log:
            with log.span("x"):
                pass
        # Simulate a crash mid-append: a torn, unterminated last record.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "sta')
        assert len(read_spans(path)) == 2

    def test_corruption_elsewhere_raises(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('not json\n{"event": "end"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_spans(path)
