"""Tests for the snapshot exporters: Prometheus exposition and JSON."""

import re

import pytest

from repro.obs import (
    MetricError,
    MetricsRegistry,
    load_snapshot,
    load_store_metrics,
    save_snapshot,
    to_json,
    to_prometheus,
)
from repro.obs.export import snapshot_from_json_dict

#: Every line of a valid exposition document is a comment or a sample —
#: the same check CI's bench-smoke job applies to `repro stats` output.
EXPOSITION_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*.*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$"
)


def _snapshot():
    reg = MetricsRegistry()
    c = reg.counter("repro_hits_total", help="lookups", labels=["device"])
    c.inc(3, device="a")
    c.inc(device="b")
    reg.gauge("repro_planned", help="planned").set(5)
    h = reg.histogram(
        "repro_lat_seconds", help="latency", labels=["device"], buckets=(0.1, 1.0)
    )
    h.observe(0.05, device="a")
    h.observe(0.5, device="a")
    h.observe(7.0, device="a")
    return reg.snapshot()


class TestPrometheus:
    def test_help_type_and_samples(self):
        text = to_prometheus(_snapshot())
        assert "# HELP repro_hits_total lookups\n" in text
        assert "# TYPE repro_hits_total counter\n" in text
        assert '\nrepro_hits_total{device="a"} 3\n' in text
        assert '\nrepro_hits_total{device="b"} 1\n' in text
        assert "# TYPE repro_planned gauge\n" in text
        assert "\nrepro_planned 5\n" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus(_snapshot())
        assert 'repro_lat_seconds_bucket{device="a",le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{device="a",le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{device="a",le="+Inf"} 3' in text
        assert 'repro_lat_seconds_sum{device="a"} 7.55' in text
        assert 'repro_lat_seconds_count{device="a"} 3' in text

    def test_every_line_matches_exposition_grammar(self):
        for line in to_prometheus(_snapshot()).splitlines():
            assert EXPOSITION_LINE.match(line), line

    def test_render_is_deterministic(self):
        assert to_prometheus(_snapshot()) == to_prometheus(_snapshot())

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m_total", labels=["path"]).inc(path='a"b\\c\nd')
        text = to_prometheus(reg.snapshot())
        assert '{path="a\\"b\\\\c\\nd"}' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""


class TestJsonRoundTrip:
    def test_save_load_round_trips_bitwise(self, tmp_path):
        snap = _snapshot()
        path = save_snapshot(snap, tmp_path / "m.json")
        loaded = load_snapshot(path)
        assert to_json(loaded) == to_json(snap)
        assert to_prometheus(loaded) == to_prometheus(snap)

    def test_rejects_foreign_documents(self):
        with pytest.raises(MetricError):
            snapshot_from_json_dict({"format": "something-else"})


class TestLoadStoreMetrics:
    def test_missing_directory_is_empty(self, tmp_path):
        snap = load_store_metrics(tmp_path / "metrics")
        assert snap.families == {}

    def test_merges_every_snapshot_file(self, tmp_path):
        metrics_dir = tmp_path / "metrics"
        save_snapshot(_snapshot(), metrics_dir / "campaign.json")
        save_snapshot(_snapshot(), metrics_dir / "serve.json")
        merged = load_store_metrics(metrics_dir)
        assert merged.value("repro_hits_total", device="a") == 6.0
        assert merged.histogram("repro_lat_seconds", device="a").count == 6

    def test_foreign_file_in_metrics_dir_raises(self, tmp_path):
        metrics_dir = tmp_path / "metrics"
        metrics_dir.mkdir()
        (metrics_dir / "rogue.json").write_text('{"what": "ever"}')
        with pytest.raises(MetricError):
            load_store_metrics(metrics_dir)
