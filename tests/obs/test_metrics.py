"""Unit tests for the `repro.obs` registry: families, labels, merging."""

import pickle

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    HistogramValue,
    MetricError,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    use_registry,
)


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", labels=["device"])
        c.inc(device="a")
        c.inc(2.0, device="a")
        c.inc(device="b")
        assert reg.value("hits_total", device="a") == 3.0
        assert reg.value("hits_total", device="b") == 1.0
        assert reg.value("hits_total", device="never") == 0.0

    def test_counter_rejects_negative_increment(self):
        c = MetricsRegistry().counter("n_total")
        with pytest.raises(MetricError):
            c.inc(-1.0)

    def test_gauge_is_last_writer_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("planned", labels=["device"])
        g.set(10, device="a")
        g.set(4, device="a")
        assert reg.value("planned", device="a") == 4.0

    def test_label_names_are_validated(self):
        c = MetricsRegistry().counter("hits_total", labels=["device"])
        with pytest.raises(MetricError):
            c.inc(dev="a")
        with pytest.raises(MetricError):
            c.inc()  # missing the declared label

    def test_declare_or_get_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", help="lookups", labels=["device"])
        b = reg.counter("hits_total", labels=["device"])
        a.inc(device="x")
        b.inc(device="x")
        assert reg.value("hits_total", device="x") == 2.0

    def test_conflicting_redeclaration_raises(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", labels=["device"])
        with pytest.raises(MetricError):
            reg.gauge("hits_total", labels=["device"])
        with pytest.raises(MetricError):
            reg.counter("hits_total", labels=["mode"])

    def test_touch_materializes_zero_series(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", labels=["result"]).touch(result="hit")
        snap = reg.snapshot()
        assert ("hit",) in snap.families["hits_total"].series
        assert snap.value("hits_total", result="hit") == 0.0


class TestHistograms:
    def test_observe_lands_in_the_right_bucket(self):
        h = HistogramValue(bounds=(0.1, 1.0))
        h.observe(0.05)   # <= 0.1
        h.observe(0.5)    # <= 1.0
        h.observe(2.0)    # +Inf
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(2.55)

    def test_observe_on_bound_counts_into_that_bucket(self):
        h = HistogramValue(bounds=(0.1, 1.0))
        h.observe(0.1)
        assert h.counts == [1, 0, 0]

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(MetricError):
            HistogramValue(bounds=(1.0, 1.0))
        with pytest.raises(MetricError):
            HistogramValue(bounds=())

    def test_quantile_interpolates_within_bucket(self):
        h = HistogramValue(bounds=(1.0, 2.0))
        for _ in range(10):
            h.observe(1.5)  # all ten land in the (1.0, 2.0] bucket
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_of_empty_histogram_is_zero(self):
        assert HistogramValue(bounds=(1.0,)).quantile(0.99) == 0.0

    def test_quantile_in_inf_bucket_reports_top_bound(self):
        h = HistogramValue(bounds=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0

    def test_percentiles_keys(self):
        assert set(HistogramValue(bounds=(1.0,)).percentiles()) == {
            "p50", "p95", "p99",
        }

    def test_merge_requires_matching_buckets(self):
        h = HistogramValue(bounds=(1.0,))
        with pytest.raises(MetricError):
            h.merge(HistogramValue(bounds=(2.0,)))

    def test_registry_histogram_child_and_observe(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "lat_seconds", labels=["device"], buckets=DEFAULT_LATENCY_BUCKETS
        )
        h.observe(0.0001, device="a")
        h.observe(0.002, device="a")
        child = h.child(device="a")
        assert child.count == 2
        assert child.sum == pytest.approx(0.0021)


class TestSnapshots:
    def _registry(self, hits=0, lat=()):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", labels=["device"])
        for _ in range(hits):
            c.inc(device="a")
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in lat:
            h.observe(v)
        return reg

    def test_snapshot_is_a_frozen_copy(self):
        reg = self._registry(hits=1)
        snap = reg.snapshot()
        reg.get("hits_total").inc(device="a")
        assert snap.value("hits_total", device="a") == 1.0
        assert reg.value("hits_total", device="a") == 2.0

    def test_snapshot_is_picklable(self):
        snap = self._registry(hits=2, lat=[0.05]).snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.value("hits_total", device="a") == 2.0
        assert clone.histogram("lat_seconds").count == 1

    def test_merge_sums_counters_and_histograms(self):
        a = self._registry(hits=2, lat=[0.05, 0.5]).snapshot()
        b = self._registry(hits=3, lat=[2.0]).snapshot()
        merged = a.merge(b)
        assert merged.value("hits_total", device="a") == 5.0
        hist = merged.histogram("lat_seconds")
        assert hist.counts == [1, 1, 1]
        # operands untouched
        assert a.value("hits_total", device="a") == 2.0
        assert b.histogram("lat_seconds").count == 1

    def test_merge_is_associative(self):
        parts = [
            self._registry(hits=n, lat=[0.01 * n]).snapshot()
            for n in (1, 2, 3)
        ]
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        assert left.value("hits_total", device="a") == right.value(
            "hits_total", device="a"
        )
        assert left.histogram("lat_seconds").counts == right.histogram(
            "lat_seconds"
        ).counts
        # Counters and bucket counts are integral, hence exact; float sums
        # are associative only up to rounding.
        assert left.histogram("lat_seconds").sum == pytest.approx(
            right.histogram("lat_seconds").sum
        )

    def test_merge_with_empty_is_identity(self):
        snap = self._registry(hits=4).snapshot()
        merged = snap.merge(MetricsSnapshot())
        assert merged.value("hits_total", device="a") == 4.0
        merged = MetricsSnapshot().merge(snap)
        assert merged.value("hits_total", device="a") == 4.0

    def test_merge_rejects_conflicting_declarations(self):
        a = MetricsRegistry()
        a.counter("m")
        b = MetricsRegistry()
        b.gauge("m")
        with pytest.raises(MetricError):
            a.snapshot().merge(b.snapshot())

    def test_registry_merge_folds_worker_delta(self):
        parent = self._registry(hits=1)
        delta = self._registry(hits=2, lat=[0.05])
        parent.merge(delta.snapshot())
        assert parent.value("hits_total", device="a") == 3.0


class TestDefaultRegistry:
    def test_use_registry_scopes_and_restores(self):
        outer = get_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped) as active:
            assert active is scoped
            assert get_registry() is scoped
        assert get_registry() is outer

    def test_use_registry_restores_on_exception(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is outer
