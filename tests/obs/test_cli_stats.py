"""CLI-level tests: `repro stats` and the --metrics-out flags."""

import json
import re

import pytest

from repro.cli import main
from repro.obs import load_snapshot
from repro.obs.export import SNAPSHOT_FORMAT
from tests.obs.test_export import EXPOSITION_LINE

KERNEL = """
__kernel void demo(__global const float* x, __global float* y, const int n) {
    int gid = get_global_id(0);
    y[gid] = x[gid] * 2.0f + 1.0f;
}
"""


@pytest.fixture(scope="module")
def campaign_store(tmp_path_factory):
    store = tmp_path_factory.mktemp("store")
    assert (
        main(
            [
                "campaign",
                "--devices", "titan-x",
                "--quick",
                "--no-progress",
                "--store", str(store),
            ]
        )
        == 0
    )
    return store


class TestStatsCommand:
    def test_prom_exposition_over_a_campaign_store(self, campaign_store, capsys):
        assert main(["stats", "--store", str(campaign_store)]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            assert EXPOSITION_LINE.match(line), line
        # per-device sweep-duration histogram
        assert re.search(
            r'repro_sweep_duration_seconds_bucket\{device="nvidia-gtx-titan-x",'
            r'backend="simulator",le="\+Inf"\} \d+',
            out,
        )
        # serve-cache counters, pre-touched to zero on a fresh store
        assert 'repro_feature_cache_requests_total{result="hit"} 0' in out
        assert 'repro_feature_cache_requests_total{result="miss"} 0' in out

    def test_json_format(self, campaign_store, capsys):
        assert main(["stats", "--store", str(campaign_store), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == SNAPSHOT_FORMAT
        names = {f["name"] for f in doc["families"]}
        assert "repro_sweep_duration_seconds" in names
        assert "repro_campaign_sweeps_done_total" in names

    def test_store_without_metrics_is_a_usage_error(self, tmp_path, capsys):
        assert main(["stats", "--store", str(tmp_path)]) == 2
        assert "no metric snapshots" in capsys.readouterr().err


class TestMetricsOutFlags:
    def test_campaign_metrics_out(self, tmp_path, capsys):
        out_file = tmp_path / "camp.json"
        assert (
            main(
                [
                    "campaign",
                    "--devices", "titan-x",
                    "--quick",
                    "--no-progress",
                    "--store", str(tmp_path / "store"),
                    "--metrics-out", str(out_file),
                ]
            )
            == 0
        )
        assert "wrote metrics snapshot" in capsys.readouterr().out
        snap = load_snapshot(out_file)
        assert (
            snap.value(
                "repro_sweeps_total",
                device="nvidia-gtx-titan-x",
                backend="simulator",
            )
            > 0
        )

    def test_predict_batch_metrics_out_service_path(self, tmp_path, capsys):
        kernel = tmp_path / "demo.cl"
        kernel.write_text(KERNEL)
        out_file = tmp_path / "serve.json"
        assert (
            main(
                [
                    "predict-batch", str(kernel), str(kernel),
                    "--quick",
                    "--metrics-out", str(out_file),
                ]
            )
            == 0
        )
        snap = load_snapshot(out_file)
        assert (
            snap.value(
                "repro_serve_requests_total",
                device="nvidia-gtx-titan-x",
                mode="batch",
            )
            == 1.0
        )
        assert (
            snap.value("repro_serve_kernels_total", device="nvidia-gtx-titan-x")
            == 2.0
        )
        # one miss (first file) then one hit (identical second file)
        assert snap.value("repro_feature_cache_requests_total", result="hit") == 1.0
        assert snap.value("repro_feature_cache_requests_total", result="miss") == 1.0

    def test_predict_batch_metrics_out_fleet_path(
        self, campaign_store, tmp_path, capsys
    ):
        kernel = tmp_path / "demo.cl"
        kernel.write_text(KERNEL)
        out_file = tmp_path / "fleet.json"
        assert (
            main(
                [
                    "predict-batch", str(kernel),
                    "--quick",
                    "--device", "titan-x",
                    "--store", str(campaign_store),
                    "--metrics-out", str(out_file),
                ]
            )
            == 0
        )
        snap = load_snapshot(out_file)
        assert snap.value("repro_fleet_batches_routed_total") == 1.0
        assert snap.value("repro_fleet_requests_routed_total") == 1.0
