"""Recording helpers: prebound hot-path recorders match the plain API."""

from repro.obs import (
    MetricsRegistry,
    observe_replay_source,
    observe_sweep,
    replay_source_recorder,
    sweep_recorder,
    to_json,
)
from repro.obs.instruments import (
    REPLAY_KERNEL_SOURCE_TOTAL,
    SWEEP_CONFIGS_TOTAL,
    SWEEP_DURATION_SECONDS,
    SWEEPS_TOTAL,
)


def test_sweep_recorder_matches_observe_sweep():
    plain, prebound = MetricsRegistry(), MetricsRegistry()
    record = sweep_recorder("replay", "titan-x", registry=prebound)
    for n, seconds in ((40, 0.002), (40, 0.004), (12, 1.5)):
        observe_sweep("replay", "titan-x", n, seconds, registry=plain)
        record(n, seconds)
    assert to_json(plain.snapshot()) == to_json(prebound.snapshot())


def test_sweep_recorder_declares_on_fresh_registry():
    reg = MetricsRegistry()
    sweep_recorder("simulator", "p100", registry=reg)(10, 0.1)
    labels = {"device": "p100", "backend": "simulator"}
    assert reg.value(SWEEPS_TOTAL, **labels) == 1.0
    assert reg.value(SWEEP_CONFIGS_TOTAL, **labels) == 10.0
    assert reg.get(SWEEP_DURATION_SECONDS).child(**labels).count == 1


def test_replay_source_recorder_matches_observe_replay_source():
    plain, prebound = MetricsRegistry(), MetricsRegistry()
    record = replay_source_recorder("columnar-mmap", registry=prebound)
    for _ in range(3):
        observe_replay_source("columnar-mmap", registry=plain)
        record()
    observe_replay_source("jsonl", registry=plain)
    observe_replay_source("jsonl", registry=prebound)
    assert to_json(plain.snapshot()) == to_json(prebound.snapshot())
    assert prebound.value(REPLAY_KERNEL_SOURCE_TOTAL, source="columnar-mmap") == 3.0
