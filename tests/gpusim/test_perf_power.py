"""Tests for the performance and power models (DVFS response shapes)."""

import pytest

from repro.gpusim.device import make_titan_x
from repro.gpusim.perf_model import PerformanceModel
from repro.gpusim.power_model import PowerModel
from repro.gpusim.profile import DynamicTraits, WorkloadProfile


def make_profile(compute=True, work_items=1 << 20):
    if compute:
        ops = {"float_mul": 400.0, "float_add": 400.0, "int_add": 50.0, "gl_access": 2.0}
        traits = DynamicTraits(cache_hit_rate=0.8, coalescing=0.95)
    else:
        ops = {"int_bw": 10.0, "int_add": 6.0, "gl_access": 24.0}
        traits = DynamicTraits(cache_hit_rate=0.05, coalescing=0.95)
    return WorkloadProfile(
        name="compute" if compute else "memory",
        ops_per_item=ops,
        work_items=work_items,
        bytes_per_access=12.0,
        traits=traits,
    )


@pytest.fixture(scope="module")
def device():
    return make_titan_x()


@pytest.fixture(scope="module")
def perf(device):
    return PerformanceModel(device)


@pytest.fixture(scope="module")
def power(device):
    return PowerModel(device)


class TestPerformanceModel:
    def test_time_decreases_with_core_for_compute(self, perf):
        p = make_profile(compute=True)
        times = [perf.execute(p, f, 3505.0).t_total_s for f in (513.0, 800.0, 1202.0)]
        assert times[0] > times[1] > times[2]

    def test_compute_kernel_near_linear_in_core(self, perf):
        p = make_profile(compute=True)
        t1 = perf.execute(p, 600.0, 3505.0).t_total_s
        t2 = perf.execute(p, 1200.0, 3505.0).t_total_s
        assert t1 / t2 == pytest.approx(2.0, rel=0.1)

    def test_memory_kernel_insensitive_to_core(self, perf):
        p = make_profile(compute=False)
        t1 = perf.execute(p, 513.0, 3505.0).t_total_s
        t2 = perf.execute(p, 1202.0, 3505.0).t_total_s
        assert t1 / t2 < 1.15

    def test_memory_kernel_scales_with_mem(self, perf):
        p = make_profile(compute=False)
        t_low = perf.execute(p, 1001.0, 810.0).t_total_s
        t_high = perf.execute(p, 1001.0, 3505.0).t_total_s
        assert t_low / t_high == pytest.approx(3505.0 / 810.0, rel=0.25)

    def test_compute_kernel_insensitive_to_mem(self, perf):
        p = make_profile(compute=True)
        t_low = perf.execute(p, 1001.0, 810.0).t_total_s
        t_high = perf.execute(p, 1001.0, 3505.0).t_total_s
        assert t_low / t_high < 1.3

    def test_bound_classification(self, perf):
        assert perf.execute(make_profile(True), 1001.0, 3505.0).bound == "compute"
        assert perf.execute(make_profile(False), 1001.0, 3505.0).bound == "memory"

    def test_time_scales_with_work_items(self, perf):
        small = perf.execute(make_profile(True, 1 << 18), 1001.0, 3505.0).t_total_s
        large = perf.execute(make_profile(True, 1 << 22), 1001.0, 3505.0).t_total_s
        assert large / small == pytest.approx(16.0, rel=0.1)

    def test_launch_overhead_floor(self, perf, device):
        tiny = WorkloadProfile(name="tiny", ops_per_item={"int_add": 1.0}, work_items=1)
        t = perf.execute(tiny, 1001.0, 3505.0).t_total_s
        assert t >= device.arch.launch_overhead_s

    def test_low_p_state_bandwidth_boost(self, perf):
        # 405 MHz reports the controller clock; effective bandwidth must be
        # clearly better than a linear reading (77 vs 39 GB/s story).
        bw405 = perf.dram_bandwidth_bytes_per_s(405.0)
        bw3505 = perf.dram_bandwidth_bytes_per_s(3505.0)
        assert bw405 / bw3505 > 1.5 * (405.0 / 3505.0)

    def test_divergence_slows_compute(self, perf):
        base = make_profile(compute=True)
        diverged = base.with_traits(divergence=0.5)
        assert (
            perf.execute(diverged, 1001.0, 3505.0).t_total_s
            > perf.execute(base, 1001.0, 3505.0).t_total_s
        )

    def test_ilp_speeds_compute(self, perf):
        base = make_profile(compute=True)
        serial = base.with_traits(ilp=1.0)
        assert (
            perf.execute(serial, 1001.0, 3505.0).t_total_s
            > perf.execute(base, 1001.0, 3505.0).t_total_s
        )

    def test_low_occupancy_reduces_overlap(self, perf):
        mixed = WorkloadProfile(
            name="mixed",
            ops_per_item={"float_add": 100.0, "gl_access": 10.0},
            work_items=1 << 20,
            bytes_per_access=16.0,
            traits=DynamicTraits(cache_hit_rate=0.1, occupancy=0.9),
        )
        starved = mixed.with_traits(occupancy=0.1)
        assert (
            perf.execute(starved, 1001.0, 3505.0).t_total_s
            > perf.execute(mixed, 1001.0, 3505.0).t_total_s
        )

    def test_invalid_clocks_rejected(self, perf):
        with pytest.raises(ValueError):
            perf.execute(make_profile(True), 0.0, 3505.0)


class TestPowerModel:
    def test_power_increases_with_core(self, perf, power):
        p = make_profile(compute=True)
        watts = []
        for f in (513.0, 800.0, 1202.0):
            phases = perf.execute(p, f, 3505.0)
            watts.append(power.power(p, f, 3505.0, phases).total_w)
        assert watts[0] < watts[1] < watts[2]

    def test_power_increases_with_mem(self, perf, power):
        p = make_profile(compute=False)
        low = power.power(p, 1001.0, 810.0, perf.execute(p, 1001.0, 810.0))
        high = power.power(p, 1001.0, 3505.0, perf.execute(p, 1001.0, 3505.0))
        assert low.total_w < high.total_w

    def test_total_within_board_limits(self, perf, power):
        # Titan X board: 250 W TDP; idle floor well under load values.
        p = make_profile(compute=True)
        phases = perf.execute(p, 1202.0, 3505.0)
        total = power.power(p, 1202.0, 3505.0, phases).total_w
        assert 60.0 < total < 280.0

    def test_components_positive(self, perf, power):
        p = make_profile(compute=False)
        parts = power.power(p, 1001.0, 3505.0, perf.execute(p, 1001.0, 3505.0))
        assert parts.p_board_w > 0
        assert parts.p_core_static_w > 0
        assert parts.p_core_dynamic_w > 0
        assert parts.p_mem_static_w > 0
        assert parts.p_mem_dynamic_w > 0

    def test_memory_bound_kernel_keeps_core_busy(self, perf, power):
        # The core activity of a memory-bound kernel at full memory clock
        # must be well above the idle floor (LSU/L2 issue traffic).
        p = make_profile(compute=False)
        phases = perf.execute(p, 1001.0, 3505.0)
        act = power.compute_activity(p, phases, mem_rel=1.0)
        assert act > 0.4

    def test_energy_parabola_for_compute_kernel(self, perf, power, device):
        """Normalized energy must dip below the default-config value at
        some intermediate core frequency and rise again at the extremes —
        the defining Fig. 1b shape."""
        p = make_profile(compute=True)

        def energy(f):
            phases = perf.execute(p, f, 3505.0)
            return power.power(p, f, 3505.0, phases).total_w * phases.t_total_s

        e_min_clock = energy(513.0)
        e_mid = min(energy(f) for f in (800.0, 850.0, 900.0, 950.0, 1001.0))
        e_max_clock = energy(1202.0)
        assert e_mid < e_min_clock
        assert e_mid < e_max_clock
