"""Tests for device tables: frequency menus, clamping, V/f curve (Fig. 4)."""

import pytest

from repro.gpusim.device import (
    TITAN_X_CORE_CLAMP_MHZ,
    VoltageCurve,
    device_aliases,
    device_slug,
    get_device,
    make_gtx_1080_ti,
    make_tesla_p100,
    make_tesla_v100,
    make_titan_x,
    resolve_device,
)


class TestTitanXMenus:
    def setup_method(self):
        self.dev = make_titan_x()

    def test_four_memory_domains(self):
        assert self.dev.mem_clocks_mhz == (405.0, 810.0, 3304.0, 3505.0)

    def test_domain_labels(self):
        assert [d.label for d in self.dev.domains] == ["L", "l", "h", "H"]

    def test_mem_l_has_six_cores(self):
        # Paper §4.1: "the lowest memory configuration (mem-L) only
        # supports six core frequencies".
        assert len(self.dev.domain_by_label("L").real_core_mhz) == 6

    def test_mem_l_caps_at_405(self):
        assert max(self.dev.domain_by_label("L").real_core_mhz) == 405.0

    def test_mem_low_has_71_cores(self):
        assert len(self.dev.domain_by_label("l").real_core_mhz) == 71

    def test_mem_high_domains_have_50_real(self):
        # Paper §4.1: "both mem-h and mem-H have 50".
        assert len(self.dev.domain_by_label("h").real_core_mhz) == 50
        assert len(self.dev.domain_by_label("H").real_core_mhz) == 50

    def test_reported_total_is_219(self):
        # Paper §1: "a total number of 219 possible configurations".
        assert len(self.dev.reported_configurations()) == 219

    def test_clamp_rule(self):
        domain = self.dev.domain_by_label("H")
        assert domain.effective_core(1392.0) == TITAN_X_CORE_CLAMP_MHZ
        assert domain.effective_core(1000.0) == 1000.0

    def test_reported_includes_fake_configs(self):
        domain = self.dev.domain_by_label("H")
        fakes = [c for c in domain.reported_core_mhz if c > TITAN_X_CORE_CLAMP_MHZ]
        assert len(fakes) == 21

    def test_real_excludes_fakes(self):
        domain = self.dev.domain_by_label("H")
        assert max(domain.real_core_mhz) == TITAN_X_CORE_CLAMP_MHZ

    def test_default_config(self):
        assert self.dev.default_config == (1001.0, 3505.0)

    def test_default_core_in_menu(self):
        for label in ("h", "H", "l"):
            assert 1001.0 in self.dev.domain_by_label(label).reported_core_mhz

    def test_unknown_mem_clock_raises(self):
        with pytest.raises(KeyError):
            self.dev.domain(999.0)

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            self.dev.domain_by_label("X")


class TestTeslaP100:
    def test_single_memory_domain(self):
        # Paper §4.1: "the NVIDIA Tesla P100 only supports one".
        dev = make_tesla_p100()
        assert dev.mem_clocks_mhz == (715.0,)

    def test_no_clamping(self):
        dev = make_tesla_p100()
        domain = dev.domains[0]
        assert domain.effective_core(max(domain.reported_core_mhz)) == max(
            domain.reported_core_mhz
        )

    def test_default_is_max_core(self):
        dev = make_tesla_p100()
        assert dev.default_core_mhz == 1328.0


class TestTeslaV100:
    def setup_method(self):
        self.dev = make_tesla_v100()

    def test_three_memory_domains(self):
        assert self.dev.mem_clocks_mhz == (405.0, 810.0, 877.0)
        assert [d.label for d in self.dev.domains] == ["L", "l", "H"]

    def test_undersized_low_domain(self):
        # Six cores, like Titan X's mem-L — keeps the §4.5 heuristic and
        # the sampler's take-all-of-the-small-domain rule live.
        low = self.dev.domain_by_label("L")
        assert len(low.real_core_mhz) == 6
        assert max(low.real_core_mhz) == 405.0

    def test_full_rate_domain_clamps(self):
        full = self.dev.domain_by_label("H")
        assert max(full.real_core_mhz) == 1380.0
        fakes = [c for c in full.reported_core_mhz if c > 1380.0]
        assert len(fakes) == 10
        assert full.effective_core(1530.0) == 1380.0

    def test_mid_domain_has_no_clamp(self):
        mid = self.dev.domain_by_label("l")
        assert mid.real_core_mhz == mid.reported_core_mhz

    def test_default_config_is_settable(self):
        assert self.dev.default_config == (1312.0, 877.0)
        assert 1312.0 in self.dev.domain_by_label("H").reported_core_mhz
        assert 1312.0 in self.dev.domain_by_label("l").reported_core_mhz

    def test_sampler_spreads_budget_across_both_high_domains(self):
        from repro.core.config import sample_training_settings

        settings = sample_training_settings(self.dev, total=40)
        assert len(settings) == 40
        by_mem = {mem: 0 for mem in self.dev.mem_clocks_mhz}
        for _core, mem in settings:
            by_mem[mem] += 1
        assert by_mem[405.0] == 6  # the whole undersized domain
        assert by_mem[810.0] >= 16 and by_mem[877.0] >= 16

    def test_mem_l_heuristic_point(self):
        from repro.core.config import mem_l_heuristic_config

        assert mem_l_heuristic_config(self.dev) == (405.0, 405.0)


class TestGTX1080Ti:
    def setup_method(self):
        self.dev = make_gtx_1080_ti()

    def test_single_memory_domain(self):
        # Consumer Pascal: one tunable GDDR5X clock, like the P100's HBM2.
        assert self.dev.mem_clocks_mhz == (5505.0,)
        assert [d.label for d in self.dev.domains] == ["M"]

    def test_titan_x_class_core_menu(self):
        domain = self.dev.domains[0]
        assert len(domain.reported_core_mhz) == 71
        assert min(domain.reported_core_mhz) == 139.0
        assert max(domain.reported_core_mhz) == 1911.0

    def test_no_clamping(self):
        domain = self.dev.domains[0]
        assert domain.real_core_mhz == domain.reported_core_mhz

    def test_default_config_is_settable(self):
        assert self.dev.default_config == (1481.0, 5505.0)
        assert 1481.0 in self.dev.domains[0].reported_core_mhz

    def test_no_mem_l_heuristic_point(self):
        from repro.core.config import mem_l_heuristic_config

        # No undersized domain → the §4.5 heuristic has nothing to add.
        assert mem_l_heuristic_config(self.dev) is None

    def test_sampler_budget(self):
        from repro.core.config import sample_training_settings

        settings = sample_training_settings(self.dev, total=40)
        assert len(settings) == 40
        assert all(mem == 5505.0 for _core, mem in settings)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_device("NVIDIA GTX Titan X").compute_capability == "5.2"

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("NVIDIA Imaginary 9000")

    def test_v100_registered_with_aliases(self):
        assert resolve_device("v100").name == "NVIDIA Tesla V100"
        assert resolve_device("tesla-v100").compute_capability == "7.0"

    def test_1080_ti_registered_with_aliases(self):
        assert resolve_device("1080-ti").name == "NVIDIA GTX 1080 Ti"
        assert resolve_device("gtx-1080-ti").compute_capability == "6.1"
        assert resolve_device("1080ti") is resolve_device("NVIDIA GTX 1080 Ti")

    def test_device_slug_is_alias_stable(self):
        assert device_slug("titan-x") == device_slug("NVIDIA GTX Titan X")
        assert device_slug("v100") == "nvidia-tesla-v100"

    def test_device_aliases_listing(self):
        assert device_aliases("NVIDIA Tesla V100") == ["tesla-v100", "v100"]
        assert "titan-x" in device_aliases("titanx")


class TestVoltageCurve:
    def test_flat_region(self):
        vf = VoltageCurve()
        assert vf.voltage(135.0) == vf.v_min
        assert vf.voltage(vf.flat_until_mhz) == vf.v_min

    def test_monotone_rising(self):
        vf = VoltageCurve()
        freqs = [200.0, 600.0, 800.0, 1000.0, 1200.0, 1392.0]
        volts = [vf.voltage(f) for f in freqs]
        assert volts == sorted(volts)

    def test_max_voltage_at_max_frequency(self):
        vf = VoltageCurve()
        assert vf.voltage(vf.max_mhz) == pytest.approx(vf.v_max)

    def test_superlinear_at_top(self):
        # The marginal volt per MHz must grow toward the top of the range.
        vf = VoltageCurve()
        low_slope = vf.voltage(800.0) - vf.voltage(700.0)
        high_slope = vf.voltage(1392.0) - vf.voltage(1292.0)
        assert high_slope > low_slope


class TestRegisterAliasCollision:
    """Regression: an alias slug collision across devices must raise —
    a silent overwrite would reroute every later resolve_device (trace
    keys, model keys, fleet routing) to the wrong hardware."""

    def test_cross_device_collision_raises_and_mutates_nothing(self):
        import dataclasses

        from repro.gpusim.device import (
            DEVICE_ALIASES,
            DEVICE_REGISTRY,
            register_device,
        )

        impostor = dataclasses.replace(make_titan_x(), name="Impostor GPU")
        registry_before = dict(DEVICE_REGISTRY)
        aliases_before = dict(DEVICE_ALIASES)
        with pytest.raises(ValueError, match="already registered"):
            register_device(impostor, aliases=("impostor", "titan-x"))
        # The failed registration is atomic: nothing changed, not even
        # the impostor's own (non-colliding) name and aliases.
        assert DEVICE_REGISTRY == registry_before
        assert DEVICE_ALIASES == aliases_before
        assert resolve_device("titan-x").name == "NVIDIA GTX Titan X"

    def test_full_name_slug_collision_raises(self):
        import dataclasses

        from repro.gpusim.device import register_device

        # Even the device's own name slug is checked: a device *named*
        # "Titan X" would shadow the registered titan-x alias.
        impostor = dataclasses.replace(make_titan_x(), name="Titan X")
        with pytest.raises(ValueError, match="already registered"):
            register_device(impostor)

    def test_idempotent_reregistration_allowed(self):
        from repro.gpusim.device import DEVICE_REGISTRY, register_device

        original = DEVICE_REGISTRY["NVIDIA GTX Titan X"]
        try:
            register_device(
                make_titan_x(), aliases=("titan-x", "gtx-titan-x", "titanx")
            )
            assert resolve_device("titanx").name == "NVIDIA GTX Titan X"
        finally:
            DEVICE_REGISTRY["NVIDIA GTX Titan X"] = original
