"""Scalar ↔ vectorized equivalence of the measurement engine.

The contract: ``GPUSimulator.sweep_batch`` over an ``(M,)`` configuration
vector is **bit-identical** to a Python loop of scalar ``run_at`` calls —
across the full 219-configuration Titan X reported grid and the P100 menu,
for compute-bound, memory-bound and divergent workloads.
"""

import numpy as np
import pytest

from repro.gpusim.device import make_tesla_p100, make_titan_x
from repro.gpusim.executor import ClockError, GPUSimulator
from repro.gpusim.noise import MeasurementNoise
from repro.gpusim.profile import DynamicTraits, WorkloadProfile

COMPUTE_BOUND = WorkloadProfile(
    name="compute-bound",
    ops_per_item={"float_mul": 400.0, "float_add": 300.0, "sf": 20.0, "gl_access": 2.0},
    work_items=1 << 20,
    traits=DynamicTraits(ilp=3.0, occupancy=0.9),
)
MEMORY_BOUND = WorkloadProfile(
    name="memory-bound",
    ops_per_item={"gl_access": 24.0, "float_add": 8.0},
    work_items=1 << 20,
    bytes_per_access=16.0,
    traits=DynamicTraits(cache_hit_rate=0.05, coalescing=0.5),
)
DIVERGENT = WorkloadProfile(
    name="divergent",
    ops_per_item={"branch": 60.0, "int_add": 120.0, "gl_access": 6.0, "sync": 2.0},
    work_items=1 << 18,
    traits=DynamicTraits(divergence=0.6, ilp=1.2, occupancy=0.4),
)
PROFILES = [COMPUTE_BOUND, MEMORY_BOUND, DIVERGENT]

SCALAR_FIELDS = (
    "time_ms",
    "power_w",
    "energy_j",
    "effective_core_mhz",
    "requested_core_mhz",
    "mem_mhz",
    "repeats",
    "n_power_samples",
)
PHASE_FIELDS = (
    "t_compute_s",
    "t_dram_s",
    "t_l2_s",
    "t_total_s",
    "compute_utilization",
    "memory_utilization",
)
POWER_FIELDS = (
    "p_board_w",
    "p_core_static_w",
    "p_core_dynamic_w",
    "p_mem_static_w",
    "p_mem_dynamic_w",
)


def _assert_batch_matches_scalar_loop(sim, profile, configs):
    batch = sim.sweep_batch(profile, configs)
    assert len(batch) == len(configs)
    for i, (core, mem) in enumerate(configs):
        record = sim.run_at(profile, core, mem)
        for name in SCALAR_FIELDS:
            assert getattr(record, name) == getattr(batch, name)[i], (name, core, mem)
        for name in PHASE_FIELDS:
            assert getattr(record.phases, name) == getattr(batch.phases, name)[i]
        for name in POWER_FIELDS:
            assert getattr(record.power_parts, name) == getattr(batch.power_parts, name)[i]


class TestBitIdentity:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    def test_full_titan_x_reported_grid(self, profile):
        """All 219 reported Titan X configurations, bit-for-bit."""
        sim = GPUSimulator(make_titan_x())
        configs = sim.device.reported_configurations()
        assert len(configs) == 219
        _assert_batch_matches_scalar_loop(sim, profile, configs)

    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    def test_full_p100_menu(self, profile):
        sim = GPUSimulator(make_tesla_p100())
        configs = sim.device.reported_configurations()
        _assert_batch_matches_scalar_loop(sim, profile, configs)

    def test_varying_sample_counts_stay_bit_identical(self):
        """Long runs → per-config sample counts differ across the sweep.

        Regression guard: zero-padding rows to a common width would
        regroup numpy's pairwise summation (the ``n % 8`` tail is added
        after the unrolled accumulators combine), flipping low bits of the
        mean power.  The engine must reduce exact-width groups instead.
        """
        sim = GPUSimulator(make_titan_x())
        long_profile = WorkloadProfile(
            name="long-running",
            ops_per_item={"float_add": 200.0, "float_mul": 200.0, "gl_access": 4.0},
            work_items=(1 << 20) * 3000,
        )
        configs = sim.device.reported_configurations()
        batch = sim.sweep_batch(long_profile, configs)
        counts = set(batch.n_power_samples.tolist())
        assert len(counts) > 1, "profile too short to vary sample counts"
        assert any(n % 8 for n in counts), "need a non-multiple-of-8 count"
        _assert_batch_matches_scalar_loop(sim, long_profile, configs)

    def test_records_match_run_at(self):
        """SweepBatch.record(i) reconstructs the scalar ExecutionRecord."""
        sim = GPUSimulator()
        configs = sim.device.real_configurations()[:20]
        batch = sim.sweep_batch(COMPUTE_BOUND, configs)
        for i, (core, mem) in enumerate(configs):
            assert batch.record(i) == sim.run_at(COMPUTE_BOUND, core, mem)

    def test_sweep_equals_batch_records(self):
        sim = GPUSimulator()
        configs = sim.device.real_configurations()[:10]
        assert sim.sweep(COMPUTE_BOUND, configs) == sim.sweep_batch(
            COMPUTE_BOUND, configs
        ).records()


class TestBatchValidation:
    def test_unreported_config_rejected(self):
        sim = GPUSimulator()
        with pytest.raises(ClockError):
            sim.sweep_batch(COMPUTE_BOUND, [(700.0, 405.0)])

    def test_unknown_mem_clock_rejected(self):
        sim = GPUSimulator()
        with pytest.raises(KeyError):
            sim.sweep_batch(COMPUTE_BOUND, [(1001.0, 1234.0)])

    def test_empty_batch(self):
        sim = GPUSimulator()
        batch = sim.sweep_batch(COMPUTE_BOUND, [])
        assert len(batch) == 0
        assert batch.records() == []

    def test_configs_property_round_trips(self):
        sim = GPUSimulator()
        configs = sim.device.real_configurations()[:7]
        assert sim.sweep_batch(COMPUTE_BOUND, configs).configs == configs


class TestNoiseArrayEntryPoints:
    def test_factors_array_matches_scalar(self):
        noise = MeasurementNoise()
        cores = np.asarray([135.0, 405.0, 810.0, 1001.0, 1202.0])
        mems = np.asarray([405.0, 405.0, 810.0, 3505.0, 3505.0])
        rel = mems / 3505.0
        t_arr, p_arr = noise.factors_array("dev", "kern", cores, mems, rel)
        for i in range(cores.size):
            t, p = noise.factors("dev", "kern", cores[i], mems[i], rel[i])
            assert t == t_arr[i]
            assert p == p_arr[i]

    def test_jitter_matrix_matches_scalar(self):
        noise = MeasurementNoise()
        cores = np.asarray([500.0, 1001.0, 1202.0])
        mems = np.asarray([3505.0, 3505.0, 810.0])
        counts = np.asarray([24, 31, 26])
        matrix = noise.sample_jitter_matrix("dev", "kern", cores, mems, counts)
        assert matrix.shape == (3, 31)
        for i in range(3):
            row = noise.sample_jitter("dev", "kern", cores[i], mems[i], int(counts[i]))
            assert np.array_equal(matrix[i, : counts[i]], row[: counts[i]])
        # Padding beyond a row's sample count is inert (exact 1.0).
        assert np.all(matrix[0, 24:] == 1.0)
