"""Tests for the simulator facade: clocks, measurement protocol, noise."""

import pytest

from repro.gpusim.executor import ClockError, GPUSimulator
from repro.gpusim.noise import MeasurementNoise, NoiseConfig
from repro.gpusim.profile import DynamicTraits, WorkloadProfile
from repro.gpusim.sampler import NVML_SAMPLING_HZ, PowerSampler


@pytest.fixture()
def sim():
    return GPUSimulator()


@pytest.fixture()
def profile():
    return WorkloadProfile(
        name="probe",
        ops_per_item={"float_add": 200.0, "float_mul": 200.0, "gl_access": 4.0},
        work_items=1 << 20,
    )


class TestClockManagement:
    def test_starts_at_default(self, sim):
        assert sim.clocks == sim.device.default_config

    def test_set_clocks(self, sim):
        core = sim.device.domain_by_label("l").reported_core_mhz[10]
        sim.set_clocks(core, 810.0)
        assert sim.clocks == (core, 810.0)

    def test_set_invalid_mem_raises(self, sim):
        with pytest.raises(KeyError):
            sim.set_clocks(1001.0, 1234.0)

    def test_set_unlisted_core_raises(self, sim):
        with pytest.raises(ClockError):
            sim.set_clocks(999.5, 3505.0)

    def test_clamped_effective_core(self, sim):
        menu = sim.device.domain_by_label("H").reported_core_mhz
        fake = max(menu)  # 1392, reported but clamped
        sim.set_clocks(fake, 3505.0)
        assert sim.clocks[0] == fake
        assert sim.effective_core_mhz == 1202.0

    def test_reset_clocks(self, sim):
        core = sim.device.domain_by_label("l").reported_core_mhz[10]
        sim.set_clocks(core, 810.0)
        sim.reset_clocks()
        assert sim.clocks == sim.device.default_config


class TestExecution:
    def test_run_produces_positive_measurements(self, sim, profile):
        r = sim.run(profile)
        assert r.time_ms > 0
        assert r.power_w > 0
        assert r.energy_j > 0

    def test_determinism(self, profile):
        a = GPUSimulator().run_at(profile, 1001.0, 3505.0)
        b = GPUSimulator().run_at(profile, 1001.0, 3505.0)
        assert a.time_ms == b.time_ms
        assert a.energy_j == b.energy_j

    def test_different_configs_differ(self, sim, profile):
        a = sim.run_at(profile, 513.0, 3505.0)
        b = sim.run_at(profile, 1202.0, 3505.0)
        assert a.time_ms != b.time_ms

    def test_record_carries_requested_and_effective(self, sim, profile):
        menu = sim.device.domain_by_label("H").reported_core_mhz
        fake = max(menu)
        r = sim.run_at(profile, fake, 3505.0)
        assert r.requested_core_mhz == fake
        assert r.effective_core_mhz == 1202.0
        assert r.config == (fake, 3505.0)

    def test_clamped_config_matches_1202(self, sim, profile):
        """Fig. 4a gray points: requesting >1202 behaves exactly like 1202."""
        fake = max(sim.device.domain_by_label("H").reported_core_mhz)
        clamped = sim.run_at(profile, fake, 3505.0)
        real = sim.run_at(profile, 1202.0, 3505.0)
        assert clamped.time_ms == pytest.approx(real.time_ms)
        assert clamped.energy_j == pytest.approx(real.energy_j)

    def test_unlisted_config_rejected(self, sim, profile):
        with pytest.raises(ClockError):
            sim.run_at(profile, 700.0, 405.0)

    def test_sweep_covers_all_reported(self, sim, profile):
        records = sim.sweep(profile)
        assert len(records) == len(sim.device.reported_configurations())

    def test_short_kernel_repeats_for_sampling(self, sim):
        tiny = WorkloadProfile(
            name="tiny", ops_per_item={"int_add": 4.0}, work_items=1024
        )
        r = sim.run_default(tiny)
        assert r.repeats > 1
        assert r.n_power_samples >= 24

    def test_energy_equals_power_times_time_scale(self, sim, profile):
        r = sim.run_default(profile)
        assert r.energy_j == pytest.approx(r.power_w * r.time_ms / 1e3, rel=0.05)


class TestNoise:
    def test_disabled_noise_is_identity(self):
        noise = MeasurementNoise(NoiseConfig(enabled=False))
        assert noise.factors("d", "k", 1001.0, 3505.0, 1.0) == (1.0, 1.0)

    def test_noise_deterministic_per_key(self):
        noise = MeasurementNoise()
        a = noise.factors("d", "k", 1001.0, 3505.0, 1.0)
        b = noise.factors("d", "k", 1001.0, 3505.0, 1.0)
        assert a == b

    def test_noise_differs_across_configs(self):
        noise = MeasurementNoise()
        a = noise.factors("d", "k", 1001.0, 3505.0, 1.0)
        b = noise.factors("d", "k", 900.0, 3505.0, 1.0)
        assert a != b

    def test_mem_l_noise_larger(self):
        import numpy as np

        noise = MeasurementNoise()
        high = [noise.factors("d", f"k{i}", 1001.0, 3505.0, 1.0)[0] for i in range(200)]
        low = [noise.factors("d", f"k{i}", 351.0, 405.0, 405.0 / 3505.0)[0] for i in range(200)]
        assert np.std(np.log(low)) > 2.0 * np.std(np.log(high))

    def test_factors_near_one(self):
        noise = MeasurementNoise()
        t, p = noise.factors("d", "k", 1001.0, 3505.0, 1.0)
        assert 0.9 < t < 1.1
        assert 0.9 < p < 1.1


class TestPowerSampler:
    def test_sample_count(self):
        s = PowerSampler()
        assert s.sample_count(1.0) == int(NVML_SAMPLING_HZ)
        assert s.sample_count(0.0) == 0

    def test_short_window_falls_back_to_idle(self):
        s = PowerSampler()
        trace = s.trace(200.0, 0.001, idle_power_w=15.0)
        assert trace.mean_power_w == 15.0

    def test_energy_mean_power_times_time(self):
        s = PowerSampler()
        trace = s.trace(100.0, 2.0)
        assert trace.energy_j == pytest.approx(200.0)

    def test_repeats_for_min_samples(self):
        s = PowerSampler()
        # One run of 10 ms holds 0.625 samples; need 20 → 32 runs.
        assert s.repeats_for_min_samples(0.010, min_samples=20) == 32

    def test_long_run_needs_single_repeat(self):
        s = PowerSampler()
        assert s.repeats_for_min_samples(10.0, min_samples=20) == 1

    def test_invalid_run_time_rejected(self):
        with pytest.raises(ValueError):
            PowerSampler().repeats_for_min_samples(0.0)

    def test_jitter_applied(self):
        import numpy as np

        s = PowerSampler()
        jitter = np.full(62, 1.1)
        trace = s.trace(100.0, 1.0, jitter=jitter)
        assert trace.mean_power_w == pytest.approx(110.0)
