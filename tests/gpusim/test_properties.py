"""Property-based tests (hypothesis) for the GPU simulator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import make_titan_x
from repro.gpusim.perf_model import PerformanceModel
from repro.gpusim.power_model import PowerModel
from repro.gpusim.profile import DynamicTraits, WorkloadProfile

DEVICE = make_titan_x()
PERF = PerformanceModel(DEVICE)
POWER = PowerModel(DEVICE)

op_counts = st.fixed_dictionaries(
    {
        "int_add": st.floats(0.0, 500.0),
        "float_mul": st.floats(0.0, 500.0),
        "float_add": st.floats(0.0, 500.0),
        "sf": st.floats(0.0, 50.0),
        "gl_access": st.floats(0.0, 60.0),
        "loc_access": st.floats(0.0, 60.0),
    }
)

traits_strategy = st.builds(
    DynamicTraits,
    cache_hit_rate=st.floats(0.0, 1.0),
    coalescing=st.floats(0.1, 1.0),
    divergence=st.floats(0.0, 0.9),
    ilp=st.floats(1.0, 4.0),
    occupancy=st.floats(0.1, 1.0),
)

profiles = st.builds(
    WorkloadProfile,
    name=st.just("prop"),
    ops_per_item=op_counts,
    work_items=st.integers(1, 1 << 22),
    bytes_per_access=st.floats(1.0, 32.0),
    traits=traits_strategy,
)

core_clocks = st.sampled_from(DEVICE.domain_by_label("l").real_core_mhz)
mem_clocks = st.sampled_from(DEVICE.mem_clocks_mhz)


@given(profile=profiles, core=core_clocks, mem=mem_clocks)
@settings(max_examples=120, deadline=None)
def test_time_positive_and_finite(profile, core, mem):
    phases = PERF.execute(profile, core, mem)
    assert phases.t_total_s > 0.0
    assert phases.t_total_s < 1e6


@given(profile=profiles, mem=mem_clocks)
@settings(max_examples=80, deadline=None)
def test_time_monotone_nonincreasing_in_core(profile, mem):
    """Raising only the core clock can never slow a kernel down."""
    menu = sorted(DEVICE.domain(mem).real_core_mhz)
    times = [PERF.execute(profile, c, mem).t_total_s for c in menu[::10]]
    for slower, faster in zip(times, times[1:]):
        assert faster <= slower * (1.0 + 1e-9)


@given(profile=profiles, core=st.sampled_from(DEVICE.domain_by_label("L").real_core_mhz))
@settings(max_examples=60, deadline=None)
def test_time_monotone_nonincreasing_in_mem(profile, core):
    """Raising only the memory clock can never slow a kernel down.

    The compared clocks skip the boosted idle P-state (405 MHz reports a
    controller clock, not the data clock), where monotonicity in the
    *reported* number is not a physical requirement.
    """
    t_810 = PERF.execute(profile, core, 810.0).t_total_s
    t_3304 = PERF.execute(profile, core, 3304.0).t_total_s
    t_3505 = PERF.execute(profile, core, 3505.0).t_total_s
    assert t_3304 <= t_810 * (1.0 + 1e-9)
    assert t_3505 <= t_3304 * (1.0 + 1e-9)


@given(profile=profiles, core=core_clocks, mem=mem_clocks)
@settings(max_examples=120, deadline=None)
def test_power_within_physical_bounds(profile, core, mem):
    phases = PERF.execute(profile, core, mem)
    total = POWER.power(profile, core, mem, phases).total_w
    assert 10.0 < total < 350.0


@given(profile=profiles, mem=mem_clocks)
@settings(max_examples=60, deadline=None)
def test_power_monotone_in_core(profile, mem):
    menu = sorted(DEVICE.domain(mem).real_core_mhz)
    watts = []
    for core in (menu[0], menu[-1]):
        phases = PERF.execute(profile, core, mem)
        watts.append(POWER.power(profile, core, mem, phases).total_w)
    assert watts[1] >= watts[0] - 1e-9


@given(profile=profiles, core=core_clocks, mem=mem_clocks)
@settings(max_examples=80, deadline=None)
def test_utilizations_bounded(profile, core, mem):
    phases = PERF.execute(profile, core, mem)
    assert 0.0 <= phases.compute_utilization <= 1.0
    assert 0.0 <= phases.memory_utilization <= 1.0


@given(profile=profiles)
@settings(max_examples=60, deadline=None)
def test_blend_between_max_and_sum(profile):
    """Total time lies between perfect overlap and full serialization."""
    phases = PERF.execute(profile, 1001.0, 3505.0)
    t_c, t_d = phases.t_compute_s, phases.t_dram_s
    overhead = DEVICE.arch.launch_overhead_s
    assert phases.t_total_s >= max(t_c, t_d) + overhead - 1e-12
    assert phases.t_total_s <= t_c + t_d + overhead + 1e-12


@given(profile=profiles, core=core_clocks, mem=mem_clocks)
@settings(max_examples=60, deadline=None)
def test_scaling_in_work_items(profile, core, mem):
    """Twice the work can never take less time."""
    t1 = PERF.execute(profile, core, mem).t_total_s
    t2 = PERF.execute(profile.scaled(profile.work_items * 2), core, mem).t_total_s
    assert t2 >= t1 - 1e-12
