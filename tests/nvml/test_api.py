"""Tests for the NVML facade (paper §4.1 call surface)."""

import pytest

from repro.gpusim.device import make_tesla_p100, make_titan_x
from repro.gpusim.profile import WorkloadProfile
from repro.nvml.api import CLOCK_GRAPHICS, CLOCK_MEM, NVML
from repro.nvml.measurement import EnergyMeter, MeasurementCampaign
from repro.nvml.types import NVMLError, NvmlReturn


@pytest.fixture()
def nvml():
    lib = NVML()
    lib.nvmlInit()
    yield lib
    lib.nvmlShutdown()


@pytest.fixture()
def handle(nvml):
    return nvml.nvmlDeviceGetHandleByIndex(0)


def probe_profile():
    return WorkloadProfile(
        name="probe",
        ops_per_item={"float_add": 100.0, "gl_access": 4.0},
        work_items=1 << 20,
    )


class TestLifecycle:
    def test_uninitialized_calls_fail(self):
        lib = NVML()
        with pytest.raises(NVMLError) as err:
            lib.nvmlDeviceGetCount()
        assert err.value.code is NvmlReturn.ERROR_UNINITIALIZED

    def test_init_idempotent(self):
        lib = NVML()
        lib.nvmlInit()
        lib.nvmlInit()
        assert lib.nvmlDeviceGetCount() == 1
        lib.nvmlShutdown()

    def test_shutdown_clears_devices(self):
        lib = NVML()
        lib.nvmlInit()
        lib.nvmlShutdown()
        with pytest.raises(NVMLError):
            lib.nvmlDeviceGetCount()

    def test_multi_device_init(self):
        lib = NVML()
        lib.nvmlInit([make_titan_x(), make_tesla_p100()])
        assert lib.nvmlDeviceGetCount() == 2
        names = {
            lib.nvmlDeviceGetName(lib.nvmlDeviceGetHandleByIndex(i)) for i in range(2)
        }
        assert names == {"NVIDIA GTX Titan X", "NVIDIA Tesla P100"}
        lib.nvmlShutdown()

    def test_bad_index_rejected(self, nvml):
        with pytest.raises(NVMLError) as err:
            nvml.nvmlDeviceGetHandleByIndex(7)
        assert err.value.code is NvmlReturn.ERROR_INVALID_ARGUMENT


class TestClockQueries:
    def test_supported_memory_clocks_descending(self, nvml, handle):
        clocks = nvml.nvmlDeviceGetSupportedMemoryClocks(handle)
        assert clocks == [3505.0, 3304.0, 810.0, 405.0]

    def test_supported_graphics_clocks(self, nvml, handle):
        clocks = nvml.nvmlDeviceGetSupportedGraphicsClocks(handle, 405.0)
        assert len(clocks) == 6
        assert max(clocks) == 405.0

    def test_reported_includes_fake_high_clocks(self, nvml, handle):
        # The facade must reproduce NVML's lie: clocks above 1202 MHz are
        # listed as supported for the high memory domains (Fig. 4a).
        clocks = nvml.nvmlDeviceGetSupportedGraphicsClocks(handle, 3505.0)
        assert max(clocks) > 1202.0
        assert len(clocks) == 71

    def test_unknown_mem_clock_not_found(self, nvml, handle):
        with pytest.raises(NVMLError) as err:
            nvml.nvmlDeviceGetSupportedGraphicsClocks(handle, 1234.0)
        assert err.value.code is NvmlReturn.ERROR_NOT_FOUND


class TestClockControl:
    def test_set_and_get_applications_clocks(self, nvml, handle):
        nvml.nvmlDeviceSetApplicationsClocks(handle, 405.0, 405.0)
        assert nvml.nvmlDeviceGetApplicationsClock(handle, CLOCK_GRAPHICS) == 405.0
        assert nvml.nvmlDeviceGetApplicationsClock(handle, CLOCK_MEM) == 405.0

    def test_clamp_visible_via_clock_info(self, nvml, handle):
        """The authors' discovery method: request a 'supported' 1392 MHz,
        then read GetClockInfo and find 1202 MHz actually applied."""
        fake = max(nvml.nvmlDeviceGetSupportedGraphicsClocks(handle, 3505.0))
        nvml.nvmlDeviceSetApplicationsClocks(handle, 3505.0, fake)
        assert nvml.nvmlDeviceGetApplicationsClock(handle, CLOCK_GRAPHICS) == fake
        assert nvml.nvmlDeviceGetClockInfo(handle, CLOCK_GRAPHICS) == 1202.0

    def test_reset_restores_default(self, nvml, handle):
        nvml.nvmlDeviceSetApplicationsClocks(handle, 405.0, 405.0)
        nvml.nvmlDeviceResetApplicationsClocks(handle)
        assert nvml.nvmlDeviceGetApplicationsClock(handle, CLOCK_GRAPHICS) == 1001.0
        assert nvml.nvmlDeviceGetApplicationsClock(handle, CLOCK_MEM) == 3505.0

    def test_unsupported_combination_rejected(self, nvml, handle):
        with pytest.raises(NVMLError):
            nvml.nvmlDeviceSetApplicationsClocks(handle, 405.0, 1202.0)

    def test_bad_clock_type(self, nvml, handle):
        with pytest.raises(NVMLError):
            nvml.nvmlDeviceGetApplicationsClock(handle, 42)


class TestPowerAndExecution:
    def test_power_reading_in_milliwatts(self, nvml, handle):
        mw = nvml.nvmlDeviceGetPowerUsage(handle)
        assert isinstance(mw, int)
        assert mw == 15000  # idle reading before any kernel ran

    def test_run_requires_autoboost_disabled(self, nvml, handle):
        with pytest.raises(NVMLError) as err:
            nvml.run_kernel(handle, probe_profile())
        assert err.value.code is NvmlReturn.ERROR_NOT_SUPPORTED

    def test_run_updates_power_reading(self, nvml, handle):
        nvml.nvmlDeviceSetAutoBoostedClocksEnabled(handle, False)
        record = nvml.run_kernel(handle, probe_profile())
        assert record.time_ms > 0
        assert nvml.nvmlDeviceGetPowerUsage(handle) == int(round(record.power_w * 1000))

    def test_run_at_applied_clocks(self, nvml, handle):
        nvml.nvmlDeviceSetAutoBoostedClocksEnabled(handle, False)
        nvml.nvmlDeviceSetApplicationsClocks(handle, 405.0, 405.0)
        low = nvml.run_kernel(handle, probe_profile())
        nvml.nvmlDeviceResetApplicationsClocks(handle)
        high = nvml.run_kernel(handle, probe_profile())
        assert low.time_ms > high.time_ms


class TestEnergyMeter:
    def test_measurement_aggregates(self, nvml, handle):
        nvml.nvmlDeviceSetAutoBoostedClocksEnabled(handle, False)
        meter = EnergyMeter(nvml, handle, min_repeats=3)
        m = meter.measure(probe_profile())
        assert m.kernel == "probe"
        assert m.energy_j > 0
        assert m.config == (1001.0, 3505.0)
        assert m.total_runs >= 3

    def test_min_repeats_validated(self, nvml, handle):
        with pytest.raises(ValueError):
            EnergyMeter(nvml, handle, min_repeats=0)


class TestMeasurementCampaign:
    def test_paper_costs(self):
        campaign = MeasurementCampaign()
        sampled, exhaustive = campaign.sampled_vs_exhaustive()
        # §3.3: "it takes 20 minutes to test 40 frequency settings,
        # 70 minutes to test all the 174 frequency settings".
        assert sampled.total_minutes == pytest.approx(20.0)
        assert exhaustive.total_minutes == pytest.approx(87.0, rel=0.25)

    def test_cost_scales_linearly(self):
        campaign = MeasurementCampaign(seconds_per_setting=30.0)
        assert campaign.cost(10).total_minutes == pytest.approx(5.0)

    def test_negative_settings_rejected(self):
        with pytest.raises(ValueError):
            MeasurementCampaign().cost(-1)
