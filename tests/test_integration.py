"""End-to-end integration tests: the full Fig. 2 + Fig. 3 workflow."""

import numpy as np
import pytest

from repro.core.config import sample_training_settings
from repro.core.pipeline import train_from_specs
from repro.core.predictor import ParetoPredictor
from repro.gpusim.device import make_titan_x
from repro.gpusim.executor import GPUSimulator
from repro.harness.context import quick_context
from repro.harness.evaluation import evaluate_suite
from repro.pareto.hypervolume import hypervolume
from repro.suite import test_benchmarks as suite_benchmarks
from repro.synthetic import generate_micro_benchmarks


class TestFullWorkflow:
    """Train from scratch on a tiny setup and predict — no shared cache."""

    @pytest.fixture(scope="class")
    def trained(self):
        device = make_titan_x()
        sim = GPUSimulator(device)
        micro = generate_micro_benchmarks()[::8]  # 14 codes
        settings = sample_training_settings(device, total=16)
        models, dataset = train_from_specs(sim, micro, settings)
        return sim, device, models, dataset, settings

    def test_training_produced_sane_dataset(self, trained):
        _, _, _, dataset, settings = trained
        assert dataset.n_samples == 14 * len(settings)
        assert np.all(dataset.y_speedup > 0)
        assert np.all(dataset.y_energy > 0)
        # Default-ish configs must sit near speedup 1.
        assert 0.05 < dataset.y_speedup.min() < dataset.y_speedup.max() < 2.0

    def test_prediction_phase_runs(self, trained):
        sim, device, models, _, _ = trained
        predictor = ParetoPredictor(models, device)
        result = predictor.predict_for_spec(suite_benchmarks()[0])
        assert result.size >= 1
        assert all(p.config in set(predictor.candidates) | {(405.0, 405.0)}
                   for p in result.front)

    def test_evaluation_metrics_finite_and_ordered(self, trained):
        sim, device, models, _, settings = trained
        predictor = ParetoPredictor(models, device)
        evals = evaluate_suite(sim, predictor, suite_benchmarks()[:3], settings)
        for ev in evals:
            assert np.isfinite(ev.coverage_diff)
            assert ev.coverage_diff >= 0.0
        values = [e.coverage_diff for e in evals]
        assert values == sorted(values)


class TestPredictionQuality:
    """Quality bars on the shared quick context."""

    @pytest.fixture(scope="class")
    def ctx(self):
        return quick_context()

    def test_predicted_fronts_capture_most_true_hypervolume(self, ctx):
        evals = evaluate_suite(
            ctx.sim, ctx.predictor, suite_benchmarks(), ctx.settings
        )
        captured = []
        for ev in evals:
            true_hv = hypervolume([p.objectives for p in ev.true_front])
            if true_hv == 0:
                continue
            captured.append(1.0 - ev.coverage_diff / true_hv)
        assert np.mean(captured) > 0.7

    def test_default_config_rarely_strictly_better(self, ctx):
        """The predicted front, measured, should almost always contain a
        point at least as good as the default config in one objective."""
        evals = evaluate_suite(
            ctx.sim, ctx.predictor, suite_benchmarks(), ctx.settings
        )
        wins = 0
        for ev in evals:
            best_energy = min(p.norm_energy for p in ev.predicted_measured)
            best_speed = max(p.speedup for p in ev.predicted_measured)
            if best_energy < 1.0 or best_speed > 1.0:
                wins += 1
        assert wins >= 11

    def test_deterministic_end_to_end(self):
        """Two fresh simulators produce identical measurements, so the
        whole experiment is reproducible bit-for-bit."""
        spec = suite_benchmarks()[3]
        a = GPUSimulator().run_default(spec.profile())
        b = GPUSimulator().run_default(spec.profile())
        assert a.time_ms == b.time_ms
        assert a.energy_j == b.energy_j

    def test_models_generalize_beyond_training_names(self, ctx):
        """Predicting for a brand-new kernel (not in training, not in the
        suite) produces a plausible Pareto set."""
        src = """
        __kernel void histogram_accumulate(__global const uint* keys,
                                           __global uint* bins,
                                           __local uint* local_bins,
                                           const int n) {
            int gid = get_global_id(0);
            int lid = get_local_id(0);
            local_bins[lid] = 0u;
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int i = 0; i < 16; i++) {
                uint key = keys[gid * 16 + i];
                local_bins[(key >> 4) & 63u] = local_bins[(key >> 4) & 63u] + 1u;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            bins[gid & 63] = local_bins[lid];
        }
        """
        result = ctx.predictor.predict_from_source(src)
        assert 1 <= result.size <= 40
        speeds = [p.speedup for p in result.modeled_front()]
        energies = [p.norm_energy for p in result.modeled_front()]
        assert all(0.0 < s < 3.0 for s in speeds)
        assert all(0.0 < e < 4.0 for e in energies)
