"""Tests for the experiment harness: sweeps, errors, evaluation, report."""

import numpy as np
import pytest

from repro.harness.characterize import characterize_kernel
from repro.harness.context import quick_context
from repro.harness.errors import prediction_errors
from repro.harness.evaluation import evaluate_pareto_prediction, evaluate_suite
from repro.harness.report import (
    ascii_scatter,
    format_box,
    format_error_panel,
    format_heading,
    format_table,
)
from repro.harness.runner import measure_configs, sweep_kernel
from repro.ml.metrics import BoxStats, GroupedErrorReport
from repro.pareto.dominance import dominates
from repro.suite import get_benchmark
from repro.suite import test_benchmarks as suite_benchmarks


@pytest.fixture(scope="module")
def ctx():
    return quick_context()


class TestRunner:
    def test_sweep_by_domain_sorted(self, ctx):
        sweep = sweep_kernel(ctx.sim, get_benchmark("K-means"), ctx.settings)
        for label, points in sweep.by_domain().items():
            cores = [p.core_mhz for p in points]
            assert cores == sorted(cores), label

    def test_sweep_default_covers_everything(self, ctx):
        sweep = sweep_kernel(ctx.sim, get_benchmark("Flte"))
        assert len(sweep.points) == len(ctx.device.real_configurations())

    def test_lookup(self, ctx):
        sweep = sweep_kernel(ctx.sim, get_benchmark("MD"), ctx.settings)
        config = ctx.settings[0]
        found = sweep.lookup(config)
        assert found is not None and found.config == config
        assert sweep.lookup((1.0, 2.0)) is None

    def test_measure_configs_keys(self, ctx):
        configs = ctx.settings[:5]
        measured = measure_configs(ctx.sim, get_benchmark("MT"), configs)
        assert set(measured) == set(configs)


class TestCharacterize:
    def test_series_cover_sampled_domains(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("AES"), ctx.settings)
        assert set(ch.series) == {"L", "l", "h", "H"}

    def test_rows_align(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("AES"), ctx.settings)
        for series in ch.series.values():
            assert len(series.rows()) == len(series.core_mhz)

    def test_speedup_span_positive(self, ctx):
        ch = characterize_kernel(ctx.sim, get_benchmark("k-NN"), ctx.settings)
        assert ch.speedup_span > 0.3


class TestPredictionErrors:
    def test_reports_cover_domains(self, ctx):
        ea = prediction_errors(
            ctx.sim, ctx.models, suite_benchmarks()[:4], ctx.settings, "speedup"
        )
        assert set(ea.reports) == {"L", "l", "h", "H"}

    def test_each_report_has_all_benchmarks(self, ctx):
        specs = suite_benchmarks()[:4]
        ea = prediction_errors(ctx.sim, ctx.models, specs, ctx.settings, "speedup")
        for report in ea.reports.values():
            assert set(report.per_key) == {s.name for s in specs}

    def test_low_memory_harder_than_high(self, ctx):
        """The Fig. 6/7 headline shape: the low memory domains are harder
        to predict than the high ones."""
        ea = prediction_errors(
            ctx.sim, ctx.models, suite_benchmarks(), ctx.settings, "speedup"
        )
        high = min(ea.reports["H"].rmse_pct, ea.reports["h"].rmse_pct)
        low = max(ea.reports["l"].rmse_pct, ea.reports["L"].rmse_pct)
        assert low > high

    def test_invalid_objective_rejected(self, ctx):
        with pytest.raises(ValueError):
            prediction_errors(ctx.sim, ctx.models, [], ctx.settings, "latency")

    def test_energy_analysis_runs(self, ctx):
        ea = prediction_errors(
            ctx.sim, ctx.models, suite_benchmarks()[:2], ctx.settings, "energy"
        )
        assert ea.objective == "energy"
        assert all(np.isfinite(r.rmse_pct) for r in ea.reports.values())


class TestEvaluation:
    def test_single_benchmark_row(self, ctx):
        ev = evaluate_pareto_prediction(
            ctx.sim, ctx.predictor, get_benchmark("K-means"), ctx.settings
        )
        assert ev.coverage_diff >= 0.0
        assert ev.predicted_size >= 1
        assert ev.true_size >= 1
        row = ev.table_row()
        assert row[0] == "K-means"

    def test_true_front_is_nondominated(self, ctx):
        ev = evaluate_pareto_prediction(
            ctx.sim, ctx.predictor, get_benchmark("MT"), ctx.settings
        )
        objs = [p.objectives for p in ev.true_front]
        for i, a in enumerate(objs):
            for b in objs[i + 1 :]:
                assert not dominates(a, b) and not dominates(b, a)

    def test_suite_sorted_by_coverage(self, ctx):
        evals = evaluate_suite(
            ctx.sim, ctx.predictor, suite_benchmarks()[:5], ctx.settings
        )
        values = [e.coverage_diff for e in evals]
        assert values == sorted(values)

    def test_predicted_measured_match_configs(self, ctx):
        ev = evaluate_pareto_prediction(
            ctx.sim, ctx.predictor, get_benchmark("MD"), ctx.settings
        )
        assert len(ev.predicted_measured) == len(ev.predicted_set.configs)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.0), ("bbbb", 2.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bbbb" in lines[3]

    def test_format_table_empty(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_format_box_within_width(self):
        stats = BoxStats.from_values(np.array([-20.0, -5.0, 0.0, 5.0, 20.0]))
        box = format_box(stats, width=41)
        assert len(box) == 41
        assert "|" in box and "=" in box

    def test_format_box_clamps_outliers(self):
        stats = BoxStats.from_values(np.array([-500.0, 0.0, 500.0]))
        assert len(format_box(stats, width=21)) == 21

    def test_error_panel_contains_rmse(self):
        report = GroupedErrorReport.build("H", {"bench": np.array([1.0, -2.0, 3.0])})
        text = format_error_panel(report, "Memory Frequency: 3505 MHz")
        assert "RMSE" in text and "bench" in text

    def test_ascii_scatter_renders(self):
        text = ascii_scatter(
            {"measured": [(0.5, 1.0), (1.0, 0.8)], "predicted": [(1.0, 0.8)]},
            width=32,
            height=8,
        )
        assert "legend" in text
        assert "m" in text  # measured glyph

    def test_ascii_scatter_empty(self):
        assert ascii_scatter({}) == "(no points)"

    def test_heading(self):
        assert format_heading("Title") == "\nTitle\n====="


class TestNearZeroTruthExclusion:
    """Regression: near-zero measured truths (the paper's §4.2 erratic
    low-memory power states) must be excluded and counted, not divided
    by — one such point otherwise blows the panel RMSE to absurdity."""

    @pytest.fixture
    def fake_world(self, monkeypatch):
        from types import SimpleNamespace

        from repro.gpusim.device import resolve_device
        from repro.synthetic import generate_micro_benchmarks

        device = resolve_device("titan-x")
        spec = generate_micro_benchmarks()[0]
        settings = [(1000.0, 3505.0), (1100.0, 3505.0), (1200.0, 3505.0)]
        truths = {settings[0]: 1.05, settings[1]: 1e-9, settings[2]: 0.95}

        def fake_measure(_sim, _spec, configs):
            return {
                c: SimpleNamespace(speedup=truths[c], norm_energy=truths[c])
                for c in configs
            }

        monkeypatch.setattr(
            "repro.harness.errors.measure_configs", fake_measure
        )

        class FakeModels:
            interactions = True

            def predict_speedup(self, x):
                return np.ones(len(x))

            def predict_energy(self, x):
                return np.ones(len(x))

        return SimpleNamespace(device=device), FakeModels(), [spec], settings

    def test_near_zero_truth_excluded_and_counted(self, fake_world):
        sim, models, specs, settings = fake_world
        ea = prediction_errors(sim, models, specs, settings, "speedup")
        assert ea.excluded == 1
        report = ea.reports["H"]
        assert report.per_key[specs[0].name].n == 2
        assert report.rmse_pct < 100.0

    def test_min_truth_zero_keeps_every_point(self, fake_world):
        sim, models, specs, settings = fake_world
        ea = prediction_errors(
            sim, models, specs, settings, "speedup", min_truth=0.0
        )
        # Without the guard the 1e-9 truth point survives and its
        # relative error is ~1e11 % — the blow-up the default prevents.
        assert ea.excluded == 0
        assert ea.reports["H"].per_key[specs[0].name].n == 3
        assert ea.reports["H"].rmse_pct > 1e6

    def test_energy_objective_guarded_too(self, fake_world):
        sim, models, specs, settings = fake_world
        ea = prediction_errors(sim, models, specs, settings, "energy")
        assert ea.excluded == 1
