"""Config-keyed sweep lookups (the O(n)-scan replacement)."""

from repro.core.config import sample_training_settings
from repro.gpusim.executor import GPUSimulator
from repro.harness.runner import measure_configs, sweep_kernel
from repro.measure import SimulatorBackend
from repro.suite import get_benchmark


def test_lookup_uses_index():
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=12)
    sweep = sweep_kernel(sim, get_benchmark("MT"), settings)
    for config in settings:
        point = sweep.lookup(config)
        assert point is not None
        assert point.config == config
    assert sweep.lookup((1.0, 2.0)) is None
    # The index is built once and reused.
    assert sweep.index is sweep.index


def test_as_dict_is_a_copy():
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=12)
    sweep = sweep_kernel(sim, get_benchmark("MT"), settings)
    d = sweep.as_dict()
    d.clear()
    assert sweep.lookup(settings[0]) is not None


def test_measure_configs_keyed_by_config():
    backend = SimulatorBackend()
    settings = sample_training_settings(backend.device, total=12)
    measured = measure_configs(backend, get_benchmark("MT"), settings)
    assert set(measured) == set(settings)


def test_sweep_kernel_accepts_backend_and_simulator():
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=10)
    spec = get_benchmark("MT")
    a = sweep_kernel(sim, spec, settings)
    b = sweep_kernel(SimulatorBackend(sim=sim), spec, settings)
    assert a.objective_points() == b.objective_points()
