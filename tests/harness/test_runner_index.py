"""Config-keyed sweep lookups (the O(n)-scan replacement)."""

from repro.core.config import sample_training_settings
from repro.gpusim.executor import GPUSimulator
from repro.harness.runner import measure_configs, sweep_kernel
from repro.measure import SimulatorBackend
from repro.suite import get_benchmark


def test_lookup_uses_index():
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=12)
    sweep = sweep_kernel(sim, get_benchmark("MT"), settings)
    for config in settings:
        point = sweep.lookup(config)
        assert point is not None
        assert point.config == config
    assert sweep.lookup((1.0, 2.0)) is None
    # The index is built once and reused.
    assert sweep.index is sweep.index


def test_as_dict_is_a_copy():
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=12)
    sweep = sweep_kernel(sim, get_benchmark("MT"), settings)
    d = sweep.as_dict()
    d.clear()
    assert sweep.lookup(settings[0]) is not None


def test_measure_configs_keyed_by_config():
    backend = SimulatorBackend()
    settings = sample_training_settings(backend.device, total=12)
    measured = measure_configs(backend, get_benchmark("MT"), settings)
    assert set(measured) == set(settings)


def test_sweep_kernel_accepts_backend_and_simulator():
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=10)
    spec = get_benchmark("MT")
    a = sweep_kernel(sim, spec, settings)
    b = sweep_kernel(SimulatorBackend(sim=sim), spec, settings)
    assert a.objective_points() == b.objective_points()


def test_sweep_many_on_sweep_hook_fires_in_order():
    """The observability seam: one callback per result, pre-yield, both
    for plain backends and for fan-out (imap_measure) backends."""
    from repro.harness.runner import sweep_many
    from repro.measure import ParallelBackend, simulator_factory
    from repro.suite import test_benchmarks

    specs = test_benchmarks()[:3]
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=8)

    seen = []
    results = list(
        sweep_many(
            SimulatorBackend(sim=sim),
            specs,
            settings,
            on_sweep=lambda r: seen.append(r.kernel),
        )
    )
    assert seen == [r.kernel for r in results] == [s.name for s in specs]

    # The fan-out path (imap_measure protocol) reports identically.
    seen_parallel = []
    with ParallelBackend(simulator_factory(), workers=1) as backend:
        list(
            sweep_many(
                backend,
                specs,
                settings,
                on_sweep=lambda r: seen_parallel.append(r.kernel),
            )
        )
    assert seen_parallel == seen


def test_sweep_many_hook_sees_result_before_consumer():
    """The callback observes each sweep even if the consumer stops early."""
    from repro.harness.runner import sweep_many
    from repro.suite import test_benchmarks

    specs = test_benchmarks()[:3]
    sim = GPUSimulator()
    settings = sample_training_settings(sim.device, total=8)
    seen = []
    stream = sweep_many(
        SimulatorBackend(sim=sim), specs, settings,
        on_sweep=lambda r: seen.append(r.kernel),
    )
    next(stream)
    assert seen == [specs[0].name]  # lazily driven: one sweep, one event
