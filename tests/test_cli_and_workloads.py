"""Tests for the CLI and the KernelSpec workload bridge."""

import pytest

from repro.cli import build_parser, main
from repro.gpusim.profile import DynamicTraits
from repro.workloads import KernelSpec

KERNEL = """
__kernel void demo(__global const float* x, __global float* y, const int n) {
    int gid = get_global_id(0);
    float acc = x[gid];
    for (int i = 0; i < 32; i++) {
        acc = acc * 1.01f + 0.5f;
    }
    y[gid] = sqrt(acc);
}
"""


@pytest.fixture()
def kernel_file(tmp_path):
    path = tmp_path / "demo.cl"
    path.write_text(KERNEL)
    return str(path)


class TestCLI:
    def test_features_command(self, kernel_file, capsys):
        assert main(["features", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "float_mul" in out
        assert "kernel: demo" in out

    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Titan X" in out
        assert "P100" in out
        assert "mem-L" in out

    def test_predict_quick(self, kernel_file, capsys):
        assert main(["predict", "--quick", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "Pareto set" in out
        assert "mem-L heuristic" in out

    def test_characterize_quick(self, capsys):
        assert main(["characterize", "--quick", "MT"]) == 0
        out = capsys.readouterr().out
        assert "memory-dominated" in out

    def test_characterize_unknown_benchmark(self, capsys):
        assert main(["characterize", "--quick", "nope"]) == 2

    def test_table2_quick(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "D(P*,P')" in out
        assert "k-NN" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_streaming_bounds_resident_rows(self, tmp_path, capsys):
        save = tmp_path / "models.json"
        assert main([
            "train", "--quick", "--trainer", "streaming",
            "--batch-rows", "64", "--save", str(save),
        ]) == 0
        out = capsys.readouterr().out
        assert save.exists()
        assert "[streaming]" in out
        line = next(
            ln for ln in out.splitlines()
            if ln.startswith("streaming peak resident rows:")
        )
        peak = int(line.split(":")[1].split("(")[0].strip())
        assert 0 < peak <= 64

    def test_train_rejects_unknown_trainer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--save", "x.json", "--trainer", "bogus"]
            )


class TestKernelSpec:
    def make_spec(self, **kwargs):
        defaults = dict(name="demo", source=KERNEL, work_items=1 << 16)
        defaults.update(kwargs)
        return KernelSpec(**defaults)

    def test_static_features_renamed_to_spec(self):
        spec = self.make_spec(name="my-workload")
        assert spec.static_features().kernel_name == "my-workload"

    def test_profile_carries_spec_name(self):
        spec = self.make_spec(name="my-workload")
        assert spec.profile().name == "my-workload"

    def test_profile_uses_traits(self):
        traits = DynamicTraits(cache_hit_rate=0.9)
        spec = self.make_spec(traits=traits)
        assert spec.profile().traits.cache_hit_rate == 0.9

    def test_trip_count_hint_changes_profile_not_features(self):
        unbounded = """
        __kernel void f(__global float* x, const int n) {
            float a = 0.0f;
            for (int i = 0; i < n; i++) { a = a + 1.0f; }
            x[0] = a;
        }
        """
        small = KernelSpec(name="s", source=unbounded, work_items=64, trip_count_hint=4)
        large = KernelSpec(name="l", source=unbounded, work_items=64, trip_count_hint=400)
        assert large.profile().op("float_add") > small.profile().op("float_add")
        # Static features never see the hint (they use the extractor default).
        assert small.static_features().values == large.static_features().values

    def test_lower_exposes_ir(self):
        assert self.make_spec().lower().name == "demo"

    def test_spec_runs_on_simulator(self):
        from repro.gpusim import GPUSimulator

        sim = GPUSimulator()
        record = sim.run_default(self.make_spec().profile())
        assert record.time_ms > 0
