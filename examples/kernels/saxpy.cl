/* Single-precision a*x + y: the canonical bandwidth-bound kernel.
 * Lint-clean by construction: the only control flow is a bounds guard,
 * which lint reports at info severity (assumed branch probability). */
__kernel void saxpy(__global float* y,
                    __global const float* x,
                    float a,
                    int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
