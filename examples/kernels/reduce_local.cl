/* Work-group tree reduction through local memory.  Statically bounded
 * loop plus barriers: exercises the loop-structure and memory-mix
 * analysis passes without tripping any lint error. */
__kernel void reduce_local(__global const float* in,
                           __global float* out,
                           __local float* scratch) {
    int lid = get_local_id(0);
    int gid = get_global_id(0);
    scratch[lid] = in[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    /* Counted loop (8 halving steps of a 256-wide group) so the trip
     * count stays statically known. */
    int stride = 256;
    for (int step = 0; step < 8; step++) {
        stride = stride / 2;
        if (lid < stride) {
            scratch[lid] = scratch[lid] + scratch[lid + stride];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        out[get_group_id(0)] = scratch[0];
    }
}
