/* Compute-bound escape-time iteration with a static iteration cap.
 * The fixed 64-iteration for-loop keeps the trip count statically
 * known, so lint stays error-free. */
__kernel void mandelbrot(__global int* counts,
                         float x0,
                         float y0,
                         float step,
                         int width) {
    int px = get_global_id(0);
    int py = get_global_id(1);
    float cx = x0 + step * px;
    float cy = y0 + step * py;
    float zx = 0.0f;
    float zy = 0.0f;
    int escaped = 0;
    for (int it = 0; it < 64; it++) {
        float zx2 = zx * zx - zy * zy + cx;
        float zy2 = 2.0f * zx * zy + cy;
        zx = zx2;
        zy = zy2;
        if (zx * zx + zy * zy > 4.0f) {
            escaped = escaped + 1;
        }
    }
    counts[py * width + px] = escaped;
}
