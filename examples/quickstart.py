#!/usr/bin/env python
"""Quickstart: predict the best frequency settings for your own kernel.

Trains the paper's models (106 synthetic micro-benchmarks x 40 sampled
frequency settings on a simulated GTX Titan X) and predicts the
Pareto-optimal (core, memory) clock settings for a new OpenCL kernel —
without ever running it.

Run:  python examples/quickstart.py
"""

from repro import paper_context
from repro.harness.report import format_heading, format_table

# Your kernel: any OpenCL C source in the supported subset.
MY_KERNEL = """
__kernel void gravity_step(__global const float* pos_x,
                           __global const float* pos_y,
                           __global float* vel_x,
                           __global float* vel_y,
                           const int n_bodies) {
    int gid = get_global_id(0);
    float px = pos_x[gid];
    float py = pos_y[gid];
    float ax = 0.0f;
    float ay = 0.0f;
    for (int j = 0; j < 256; j++) {
        float dx = pos_x[j] - px;
        float dy = pos_y[j] - py;
        float dist2 = dx * dx + dy * dy + 0.0001f;
        float inv = rsqrt(dist2);
        float inv3 = inv * inv * inv;
        ax = ax + dx * inv3;
        ay = ay + dy * inv3;
    }
    vel_x[gid] = vel_x[gid] + 0.001f * ax;
    vel_y[gid] = vel_y[gid] + 0.001f * ay;
}
"""


def main() -> None:
    print("Training the paper's models (first call takes a few seconds)...")
    ctx = paper_context()

    print(format_heading("Static features (extracted without running the kernel)"))
    from repro import extract_features

    features = extract_features(MY_KERNEL)
    for name, value in features.as_dict().items():
        if value > 0:
            print(f"  {name:<12} {value:6.3f}")

    result = ctx.predictor.predict_from_source(MY_KERNEL)

    print(format_heading("Predicted Pareto-optimal frequency settings"))
    rows = []
    for point in result.front:
        origin = "model" if point.modeled else "mem-L heuristic"
        rows.append(
            (
                f"{point.core_mhz:.0f} MHz",
                f"{point.mem_mhz:.0f} MHz",
                f"{point.speedup:.3f}" if point.modeled else "-",
                f"{point.norm_energy:.3f}" if point.modeled else "-",
                origin,
            )
        )
    print(
        format_table(
            ["core clock", "mem clock", "pred. speedup", "pred. norm. energy", "origin"],
            rows,
        )
    )
    print(
        "\nReading: pick the rightmost row for raw speed, the lowest-energy"
        "\nrow for battery/cluster efficiency, or anything between — every"
        "\nrow is predicted to be a non-dominated trade-off. The default"
        f"\nconfiguration is core {ctx.device.default_core_mhz:.0f} / mem"
        f" {ctx.device.default_mem_mhz:.0f} MHz."
    )


if __name__ == "__main__":
    main()
