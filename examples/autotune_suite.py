#!/usr/bin/env python
"""Autotuning scenario: pick per-application clocks for a job mix.

A compute cluster runs the paper's twelve benchmark kernels.  For each
application this example asks the predictor for its Pareto set, then picks
(a) the predicted-fastest and (b) the predicted-most-efficient setting,
and verifies both choices against ground-truth measurements on the
simulated Titan X — including what each choice saves compared to simply
leaving the GPU at the default application clocks.

Run:  python examples/autotune_suite.py
"""

from repro import paper_context, test_benchmarks
from repro.harness.report import format_heading, format_table
from repro.harness.runner import measure_configs


def pick_settings(result):
    """Choose the two extreme recommendations from a predicted front."""
    modeled = result.modeled_front() or result.front
    fastest = max(modeled, key=lambda p: p.speedup)
    greenest = min(modeled, key=lambda p: p.norm_energy)
    return fastest, greenest


def main() -> None:
    ctx = paper_context()
    rows = []
    total_energy_saving = 0.0
    for spec in test_benchmarks():
        result = ctx.predictor.predict_for_spec(spec)
        fastest, greenest = pick_settings(result)

        # Verify against ground truth (the part a deployed tuner skips).
        measured = measure_configs(
            ctx.sim, spec, [fastest.config, greenest.config]
        )
        fast_true = measured[fastest.config]
        green_true = measured[greenest.config]
        total_energy_saving += 1.0 - green_true.norm_energy

        rows.append(
            (
                spec.name,
                f"{fastest.core_mhz:.0f}/{fastest.mem_mhz:.0f}",
                f"{fast_true.speedup:.2f}x",
                f"{greenest.core_mhz:.0f}/{greenest.mem_mhz:.0f}",
                f"{(1.0 - green_true.norm_energy) * 100:+.0f}%",
                f"{green_true.speedup:.2f}x",
            )
        )

    print(format_heading("Per-application clock recommendations (verified)"))
    print(
        format_table(
            [
                "application",
                "fastest cfg",
                "speedup",
                "greenest cfg",
                "energy saved",
                "at speed",
            ],
            rows,
        )
    )
    mean_saving = total_energy_saving / len(rows) * 100
    print(
        f"\nAverage energy saving of the 'greenest' choice vs the default"
        f" configuration: {mean_saving:.1f}%"
    )
    print(
        "Note: 'energy saved' is measured on the simulator, not predicted —"
        "\nthis is the end-to-end payoff of the static tuner."
    )


if __name__ == "__main__":
    main()
