#!/usr/bin/env python
"""Working directly against the NVML facade (the paper's §4.1 tooling).

Shows the low-level workflow the paper's experiments used, written exactly
like pynvml client code: enumerate supported clocks, disable auto-boost,
set application clocks, run a kernel, poll board power, and witness the
Titan X clamping quirk (requesting 1392 MHz silently applies 1202 MHz).

Run:  python examples/nvml_session.py
"""

from repro.clkernel import lower_source
from repro.gpusim import WorkloadProfile
from repro.nvml import (
    CLOCK_GRAPHICS,
    NVML,
    EnergyMeter,
)

KERNEL = """
__kernel void scale_add(__global const float* x,
                        __global float* y,
                        const float a,
                        const int n) {
    int gid = get_global_id(0);
    float acc = x[gid];
    for (int i = 0; i < 64; i++) {
        acc = acc * a + 0.5f;
    }
    y[gid] = acc;
}
"""


def main() -> None:
    lib = NVML()
    lib.nvmlInit()
    try:
        handle = lib.nvmlDeviceGetHandleByIndex(0)
        print(f"device: {lib.nvmlDeviceGetName(handle)}")

        # 1. What clocks does the board claim to support?
        mem_clocks = lib.nvmlDeviceGetSupportedMemoryClocks(handle)
        print(f"memory clocks: {[int(m) for m in mem_clocks]} MHz")
        for mem in mem_clocks:
            cores = lib.nvmlDeviceGetSupportedGraphicsClocks(handle, mem)
            print(
                f"  mem {mem:6.0f} MHz -> {len(cores):2d} core clocks "
                f"({cores[-1]:.0f}..{cores[0]:.0f} MHz)"
            )

        # 2. The paper disables auto-boost before manual DVFS (§4.1).
        lib.nvmlDeviceSetAutoBoostedClocksEnabled(handle, False)

        # 3. The clamping quirk of Fig. 4a, observed exactly as the
        #    authors did: set a 'supported' clock, read back the real one.
        fake = max(lib.nvmlDeviceGetSupportedGraphicsClocks(handle, 3505.0))
        lib.nvmlDeviceSetApplicationsClocks(handle, 3505.0, fake)
        applied = lib.nvmlDeviceGetClockInfo(handle, CLOCK_GRAPHICS)
        print(
            f"\nrequested core {fake:.0f} MHz -> actually applied"
            f" {applied:.0f} MHz (the paper's gray points)"
        )

        # 4. Measure energy at two frequency settings.
        ir = lower_source(KERNEL)
        profile = WorkloadProfile.from_ir(ir, work_items=1 << 21)
        meter = EnergyMeter(lib, handle, min_repeats=3)

        for core, mem in ((1001.0, 3505.0), (658.0, 810.0)):
            cores = lib.nvmlDeviceGetSupportedGraphicsClocks(handle, mem)
            nearest = min(cores, key=lambda c: abs(c - core))
            lib.nvmlDeviceSetApplicationsClocks(handle, mem, nearest)
            m = meter.measure(profile)
            power_mw = lib.nvmlDeviceGetPowerUsage(handle)
            print(
                f"\n@ core {nearest:7.1f} / mem {mem:6.0f} MHz: "
                f"{m.mean_time_ms:7.3f} ms, {power_mw / 1000.0:6.1f} W, "
                f"{m.energy_j * 1000.0:7.2f} mJ per run"
            )

        lib.nvmlDeviceResetApplicationsClocks(handle)
    finally:
        lib.nvmlShutdown()


if __name__ == "__main__":
    main()
