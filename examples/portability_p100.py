#!/usr/bin/env python
"""Portability: the same methodology on a Tesla P100 (paper §4.1).

The paper notes the approach is portable but "more interesting on the
Titan X" because the P100 exposes a single tunable memory clock (Fig. 4b).
This example retrains the full pipeline against the simulated P100 and
predicts settings for one kernel — demonstrating that nothing in the
framework is Titan-X-specific, and that on a single-memory-domain part the
problem degenerates to picking core clocks along one curve.

Run:  python examples/portability_p100.py
"""

from repro import make_tesla_p100, train_from_specs
from repro.core.config import sample_training_settings
from repro.core.predictor import ParetoPredictor
from repro.gpusim import GPUSimulator
from repro.harness.report import format_heading, format_table
from repro.harness.runner import measure_configs
from repro.suite import get_benchmark
from repro.synthetic import generate_micro_benchmarks


def main() -> None:
    device = make_tesla_p100()
    sim = GPUSimulator(device)
    print(f"device: {device.name} (compute capability {device.compute_capability})")
    print(f"memory clocks: {[int(m) for m in device.mem_clocks_mhz]} MHz")
    print(f"core menu size: {len(device.domains[0].real_core_mhz)}")

    print("\ntraining on the synthetic micro-benchmarks (thinned for speed)...")
    micro = generate_micro_benchmarks()[::3]
    settings = sample_training_settings(device, total=24)
    models, dataset = train_from_specs(sim, micro, settings)
    print(f"trained on {dataset.n_samples} samples")

    predictor = ParetoPredictor(models, device)
    spec = get_benchmark("Convolution")
    result = predictor.predict_for_spec(spec)

    # Verify the predicted front against ground truth.
    measured = measure_configs(sim, spec, result.configs)

    print(format_heading(f"Predicted Pareto set for {spec.name} on the P100"))
    rows = []
    for point in result.front:
        true = measured[point.config]
        rows.append(
            (
                f"{point.core_mhz:.0f}/{point.mem_mhz:.0f}",
                f"{point.speedup:.3f}",
                f"{point.norm_energy:.3f}",
                f"{true.speedup:.3f}",
                f"{true.norm_energy:.3f}",
            )
        )
    print(
        format_table(
            ["cfg (core/mem MHz)", "pred. speedup", "pred. energy",
             "meas. speedup", "meas. energy"],
            rows,
        )
    )
    print(
        "\nWith one memory domain there is no mem-L heuristic and the"
        "\nfront is a single core-frequency trade-off curve — exactly why"
        "\nthe paper calls the Titan X 'more interesting' (§4.1)."
    )


if __name__ == "__main__":
    main()
